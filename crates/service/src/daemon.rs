//! `reclaimd` — the long-lived solve daemon.
//!
//! Architecture (std plus a thin epoll shim in `crate::net` — no
//! async runtime, no FFI crates; the engine is `Sync` and
//! thread-scoped, so the remaining work really is protocol plus cache
//! eviction, as the roadmap predicted):
//!
//! ```text
//!        nonblocking poll loop (Daemon::run, caller's thread)
//!        owns the listener and every connection socket (epoll)
//!           │ per-connection read buffer → complete frames
//!           │ (admission stops at --max-inflight: backpressure,
//!           │  not unbounded buffering; stats/shutdown answered
//!           │  inline, never consuming a worker slot)
//!           ▼
//!   frames ──► mpsc job queue ──► fixed worker pool (N std threads)
//!                                    │  content-addressed cache
//!                                    │  (Arc<PreparedInstance>, LRU)
//!                                    ▼
//!              completion queue (worker → poll loop, wake via pipe)
//!                                    ▼
//!              per-connection write queue → nonblocking writes
//! ```
//!
//! Workers pull jobs from one shared queue, so requests from all
//! connections interleave freely; responses echo the request `id`, and
//! a pipelined client must match on it (two requests on one connection
//! may complete out of order — completions are written back in the
//! order workers finish them, not the order frames arrived). Each
//! worker owns a single-threaded [`Engine`], making the pool size the
//! daemon's one parallelism knob: a worker that pulls a job while the
//! rest of the pool is idle borrows the spare slots and runs that
//! request on a boosted engine (`threads = 1 + spares`), so exact
//! branch-and-bound solves use the parallel partition sweep when the
//! daemon has capacity — total solving threads stay bounded by
//! `--workers` at reservation time.
//!
//! `shutdown` closes the listener at once, answers every admitted
//! request, flushes every write queue, closes **all** registered
//! sockets (idle connections included — nothing lingers waiting for
//! the peer), and joins the workers. A connection that sends bytes
//! mid-drain is not admitted; its socket is closed with the rest.

use crate::cache::{CacheConfig, CachedCurve, InstanceCache, PatchError};
use crate::net::{Poller, WAKE_TOKEN};
use crate::proto::{
    key_to_hex, write_frame, CurveExactReport, ErrorBody, ErrorKind, FrameBuffer, LineageReport,
    NetStatsReport, PatchReport, Request, RequestEnvelope, Response, ResponseEnvelope, SolveReport,
    StatsReport, WorkerStatsReport, MIN_PROTOCOL_VERSION,
};
use crate::store::Store;
use models::{EnergyModel, PowerLaw};
use reclaim_core::engine::content_key;
use reclaim_core::Engine;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use taskgraph::{PreparedInstance, TaskGraph};

/// Where a daemon listens / where a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (the default transport).
    Unix(PathBuf),
    /// A TCP address.
    Tcp(SocketAddr),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path to bind (ignored when `tcp` is set).
    pub socket: PathBuf,
    /// Optional TCP bind address (e.g. `127.0.0.1:0`); overrides the
    /// Unix socket.
    pub tcp: Option<String>,
    /// Worker pool size (defaults to available parallelism).
    pub workers: usize,
    /// Cache budgets.
    pub cache: CacheConfig,
    /// The power law every solve uses.
    pub power: PowerLaw,
    /// Accept cap: connections past this are answered with one
    /// `protocol` error frame and closed (counted in `rejected`).
    pub max_connections: usize,
    /// Per-connection admission bound: at most this many requests from
    /// one connection may sit in the job queue / workers at once.
    /// Past it the poll loop stops reading the socket (backpressure —
    /// the peer's sends back up in the kernel buffer) instead of
    /// buffering frames unboundedly.
    pub max_inflight: usize,
    /// Directory of the disk-backed instance store (`--store`). When
    /// set the daemon boots by scanning it (restarting **warm**) and
    /// spills instances, curves, and patch lineage write-through.
    pub store: Option<PathBuf>,
    /// Fsync every store write (`--store-fsync`). Off by default:
    /// kill -9 is survived either way (records are checksummed), the
    /// flag buys power-failure durability at a latency cost.
    pub store_fsync: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("reclaimd.sock"),
            tcp: None,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache: CacheConfig::default(),
            power: PowerLaw::CUBIC,
            max_connections: 1024,
            max_inflight: 32,
            store: None,
            store_fsync: false,
        }
    }
}

/// Parse `reclaimd`-style flags into a config (shared by the
/// `reclaimd` binary and `reclaim serve`).
///
/// ```text
/// --socket PATH        unix socket path   (default reclaimd.sock)
/// --tcp ADDR           listen on TCP instead (e.g. 127.0.0.1:7421)
/// --workers N          worker pool size   (default: CPUs)
/// --cache-entries N    cache entry budget (default 64)
/// --cache-bytes B      cache byte budget  (default 256 MiB)
/// --alpha A            power-law exponent (default 3)
/// --max-connections N  accept cap         (default 1024)
/// --max-inflight N     per-connection admission bound (default 32)
/// --store DIR          disk-backed instance store (boots warm)
/// --store-fsync        fsync every store write (default: OS-buffered)
/// ```
pub fn config_from_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut cfg = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value"))
                .cloned()
        };
        match flag.as_str() {
            "--socket" => cfg.socket = PathBuf::from(value()?),
            "--tcp" => cfg.tcp = Some(value()?),
            "--workers" => {
                cfg.workers = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers needs an integer ≥ 1")?;
            }
            "--cache-entries" => {
                cfg.cache.max_entries = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--cache-entries needs an integer ≥ 1")?;
            }
            "--cache-bytes" => {
                cfg.cache.max_bytes = value()?
                    .parse::<usize>()
                    .map_err(|_| "--cache-bytes needs an integer")?;
            }
            "--alpha" => {
                let a: f64 = value()?.parse().map_err(|_| "--alpha needs a number")?;
                if !(a.is_finite() && a > 1.0) {
                    return Err("--alpha must be finite and > 1".into());
                }
                cfg.power = PowerLaw::new(a);
            }
            "--max-connections" => {
                cfg.max_connections = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--max-connections needs an integer ≥ 1")?;
            }
            "--max-inflight" => {
                cfg.max_inflight = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--max-inflight needs an integer ≥ 1")?;
            }
            "--store" => cfg.store = Some(PathBuf::from(value()?)),
            "--store-fsync" => cfg.store_fsync = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cfg)
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Either stream type, as one readable/writable object.
pub(crate) enum Stream {
    /// Unix-domain.
    Unix(UnixStream),
    /// TCP.
    Tcp(TcpStream),
}

impl Stream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    pub(crate) fn connect(ep: &Endpoint) -> io::Result<Stream> {
        Ok(match ep {
            Endpoint::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
            Endpoint::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // Frames are small request/response pairs; latency
                // beats batching.
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[derive(Default)]
struct WorkerCounters {
    requests: AtomicU64,
    solves: AtomicU64,
    solve_ns: AtomicU64,
    warm_lost: AtomicU64,
    bnb_nodes: AtomicU64,
    bnb_steals: AtomicU64,
    bnb_cancelled: AtomicU64,
    sp_splice: AtomicU64,
    sp_splice_miss: AtomicU64,
    cone_nodes: AtomicU64,
}

/// Socket-layer counters, shared between the poll loop (which owns
/// the sockets) and the workers (which answer `stats` and count
/// timeouts) — see [`NetStatsReport`] for the wire shape.
#[derive(Default)]
struct NetCounters {
    /// Open registered connections (gauge).
    connections: AtomicU64,
    /// Admitted jobs not yet pulled by a worker (gauge).
    queue_depth: AtomicU64,
    /// Admitted jobs not yet answered (gauge; queued + in a worker).
    inflight: AtomicU64,
    /// Connections refused at the `--max-connections` accept cap.
    rejected: AtomicU64,
    /// Requests answered with the `timeout` error kind because they
    /// out-waited their `timeout_ms` budget in the queue.
    timeouts: AtomicU64,
}

impl NetCounters {
    fn report(&self) -> NetStatsReport {
        NetStatsReport {
            connections: self.connections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

struct State {
    cache: InstanceCache,
    /// The disk store behind the cache (`--store`), also reachable
    /// directly for `lineage` / `as_of` walks and curve spills.
    store: Option<Arc<Store>>,
    power: PowerLaw,
    shutdown: AtomicBool,
    net: NetCounters,
    workers: Vec<WorkerCounters>,
    /// Thread slots currently in use across the pool: each busy
    /// worker holds one, plus any spare slots it borrowed for a
    /// parallel exact search. The invariant `active ≤ workers.len()`
    /// keeps the daemon's total solving threads bounded by
    /// `--workers` no matter how solves and borrows interleave.
    active: AtomicU64,
}

/// Reserve every currently-idle pool slot for one request's parallel
/// search. Returns how many extra slots were borrowed (0 when the
/// pool is saturated); the caller must release `1 + extra` slots when
/// the request completes.
fn reserve_spares(active: &AtomicU64, pool: u64) -> u64 {
    let mut cur = active.load(Ordering::Relaxed);
    loop {
        if cur >= pool {
            return 0;
        }
        let extra = pool - cur;
        match active.compare_exchange_weak(cur, cur + extra, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return extra,
            Err(observed) => cur = observed,
        }
    }
}

/// One admitted frame, queued for the worker pool. `token` names the
/// connection it arrived on; the worker's answer travels back to the
/// poll loop as a [`Completion`] under the same token.
struct Job {
    token: u64,
    payload: String,
    /// When the frame was admitted — per-request `timeout_ms` budgets
    /// are measured from here, so queue wait counts against them.
    enqueued: Instant,
}

/// A finished job on its way back to the poll loop.
struct Completion {
    token: u64,
    /// The already-encoded response payload.
    payload: String,
    /// The job was `shutdown`: the loop starts draining.
    stop: bool,
}

/// A bound-but-not-yet-running daemon. Binding and running are split
/// so callers (tests, the X7 experiment) can learn the resolved
/// endpoint — e.g. the ephemeral port of `--tcp 127.0.0.1:0` — before
/// blocking in [`Daemon::run`].
pub struct Daemon {
    listener: Listener,
    endpoint: Endpoint,
    cfg: DaemonConfig,
    state: Arc<State>,
}

impl Daemon {
    /// Bind the socket. For Unix endpoints a stale socket file from a
    /// dead daemon is removed first.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Daemon> {
        let (listener, endpoint) = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let ep = Endpoint::Tcp(l.local_addr()?);
                (Listener::Tcp(l), ep)
            }
            None => {
                if cfg.socket.exists() {
                    // Refuse to steal a live daemon's socket; only a
                    // dead one (nothing accepting) is reclaimed.
                    if UnixStream::connect(&cfg.socket).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("{} already has a live daemon", cfg.socket.display()),
                        ));
                    }
                    std::fs::remove_file(&cfg.socket)?;
                }
                let l = UnixListener::bind(&cfg.socket)?;
                (Listener::Unix(l), Endpoint::Unix(cfg.socket.clone()))
            }
        };
        let workers = cfg.workers.max(1);
        // Open (and recovery-scan) the store before serving: the very
        // first request after a restart already sees the warm state.
        let store = match &cfg.store {
            Some(dir) => Some(Arc::new(Store::open(dir, cfg.store_fsync)?)),
            None => None,
        };
        let state = Arc::new(State {
            cache: InstanceCache::with_store(cfg.cache, store.clone()),
            store,
            power: cfg.power,
            shutdown: AtomicBool::new(false),
            net: NetCounters::default(),
            workers: (0..workers).map(|_| WorkerCounters::default()).collect(),
            active: AtomicU64::new(0),
        });
        Ok(Daemon {
            listener,
            endpoint,
            cfg,
            state,
        })
    }

    /// The resolved endpoint clients should connect to.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// Serve until a `shutdown` request arrives, then drain and
    /// return. Consumes the daemon; the socket file (Unix) is removed
    /// as soon as the drain starts.
    pub fn run(self) -> io::Result<()> {
        let Daemon {
            listener,
            endpoint,
            cfg,
            state,
        } = self;
        let poller = Arc::new(Poller::new()?);
        listener.set_nonblocking()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_handles: Vec<_> = (0..state.workers.len())
            .map(|worker_id| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let completions = Arc::clone(&completions);
                let poller = Arc::clone(&poller);
                std::thread::spawn(move || {
                    worker_loop(worker_id, &rx, &state, &completions, &poller)
                })
            })
            .collect();
        let mut el = EventLoop {
            poller,
            listener: Some(listener),
            unlink: matches!(endpoint, Endpoint::Unix(_)).then(|| cfg.socket.clone()),
            conns: HashMap::new(),
            next_token: 0,
            tx,
            completions,
            state,
            max_connections: cfg.max_connections.max(1),
            max_inflight: cfg.max_inflight.max(1),
            draining: false,
            drain_deadline: None,
        };
        let state_for_drain = Arc::clone(&el.state);
        let result = el.run();
        // Dropping the loop drops the job-queue sender: workers finish
        // what they pulled and exit on the closed channel.
        drop(el);
        for h in worker_handles {
            let _ = h.join();
        }
        // A clean shutdown persists exactly what a restart recovers:
        // every live entry (analyses + retained curve) spills once the
        // workers can no longer mutate the cache.
        state_for_drain.cache.spill_all();
        result
    }
}

/// Convenience: bind and run in one call.
pub fn run(cfg: DaemonConfig) -> io::Result<()> {
    Daemon::bind(cfg)?.run()
}

impl Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }
}

/// Token the listener is registered under (connection tokens count up
/// from zero and can never collide with it in one daemon lifetime).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Payloads at or under this size are decoded inline by the poll
/// loop, so `stats` and `shutdown` are answered without consuming a
/// worker slot (or waiting behind queued solves). Solve payloads —
/// always larger — skip the inline attempt entirely.
const INLINE_MAX: usize = 512;

/// How long the drain waits for peers to read their final responses
/// once every admitted request is answered.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One registered connection, owned by the poll loop.
struct Conn {
    stream: Stream,
    /// Bytes read but not yet admitted as frames.
    rbuf: FrameBuffer,
    /// Encoded response frames awaiting a writable socket.
    wqueue: VecDeque<Vec<u8>>,
    /// Progress into the front of `wqueue`.
    wpos: usize,
    /// Admitted-but-unanswered requests from this connection.
    inflight: usize,
    /// No more reads: EOF, a framing violation, or a drain.
    read_closed: bool,
    /// Interest currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    fn new(stream: Stream) -> Conn {
        Conn {
            stream,
            rbuf: FrameBuffer::new(),
            wqueue: VecDeque::new(),
            wpos: 0,
            inflight: 0,
            read_closed: false,
            reg_read: true,
            reg_write: false,
        }
    }
}

/// A response payload as wire bytes (the same framing
/// [`write_frame`] emits).
fn frame_bytes(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// The daemon's poll loop: owns the listener, every connection socket,
/// and the job-queue sender. See the module docs for the flow.
struct EventLoop {
    poller: Arc<Poller>,
    listener: Option<Listener>,
    /// Unix socket path to unlink when the drain starts.
    unlink: Option<PathBuf>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    tx: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    state: Arc<State>,
    max_connections: usize,
    max_inflight: usize,
    draining: bool,
    /// Set once the drain has answered everything; force-closes
    /// unflushed peers after [`DRAIN_GRACE`].
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        loop {
            // Block indefinitely while serving; poll on a short tick
            // while draining so the grace deadline is observed.
            let timeout_ms = if self.draining { 50 } else { -1 };
            let events = self.poller.wait(timeout_ms)?;
            for ev in events {
                match ev.token {
                    // The wake pipe: completions are drained below.
                    WAKE_TOKEN => {}
                    LISTENER_TOKEN => self.accept_ready(),
                    // A writable event just re-drives the connection:
                    // drive_conn flushes whatever is queued.
                    token if ev.readable || ev.writable => {
                        self.handle_conn_event(token, ev.readable);
                    }
                    _ => {}
                }
            }
            self.drain_completions();
            if self.draining && self.sweep_drain() {
                return Ok(());
            }
        }
    }

    /// Accept until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let accepted = match listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
            };
            match accepted {
                Ok(stream) => {
                    if self.conns.len() >= self.max_connections {
                        self.state.net.rejected.fetch_add(1, Ordering::Relaxed);
                        // Best-effort diagnostic before the close; the
                        // peer's version is unknowable, so answer at
                        // the minimum every supported client accepts.
                        let resp = ResponseEnvelope {
                            version: MIN_PROTOCOL_VERSION,
                            id: 0,
                            response: Response::Error(ErrorBody::new(
                                ErrorKind::Protocol,
                                format!(
                                    "connection limit reached ({} open, --max-connections {})",
                                    self.conns.len(),
                                    self.max_connections
                                ),
                            )),
                        };
                        let mut stream = stream;
                        let _ = write_frame(&mut stream, &resp.encode());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.state.net.connections.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // A transient accept failure is not fatal.
                    eprintln!("reclaimd: accept failed: {e}");
                    return;
                }
            }
        }
    }

    fn handle_conn_event(&mut self, token: u64, readable: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if self.drive_conn(token, &mut conn, readable) {
            self.conns.insert(token, conn);
        } else {
            self.close_conn(conn);
        }
    }

    /// Advance one connection: read what's there, admit frames, flush
    /// responses, refresh poller interest. Returns whether the
    /// connection stays registered.
    fn drive_conn(&mut self, token: u64, conn: &mut Conn, readable: bool) -> bool {
        if readable && !self.read_into(token, conn) {
            return false;
        }
        // Admission may have been blocked at --max-inflight earlier;
        // parked frames in the read buffer get another chance whenever
        // the connection is driven (in particular after completions).
        self.admit_frames(token, conn);
        if !flush(conn) {
            return false;
        }
        // Close once nothing more can arrive or depart: read side
        // done, every admitted request answered, every answer flushed.
        if conn.read_closed && conn.inflight == 0 && conn.wqueue.is_empty() {
            return false;
        }
        let want_read = !conn.read_closed && !self.draining && conn.inflight < self.max_inflight;
        let want_write = !conn.wqueue.is_empty();
        if (want_read, want_write) != (conn.reg_read, conn.reg_write) {
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want_read, want_write);
            conn.reg_read = want_read;
            conn.reg_write = want_write;
        }
        true
    }

    /// Nonblocking reads into the connection's frame buffer, admitting
    /// frames between chunks so `--max-inflight` bounds how much one
    /// burst can buffer. Returns false when the socket errored.
    fn read_into(&mut self, token: u64, conn: &mut Conn) -> bool {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if conn.read_closed || self.draining || conn.inflight >= self.max_inflight {
                return true;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    if !conn.rbuf.is_empty() {
                        // Mid-frame EOF: same one-frame diagnostic the
                        // framing-violation path produces.
                        self.queue_inline_error(
                            conn,
                            ErrorBody::new(
                                ErrorKind::Protocol,
                                "connection closed mid-frame".to_string(),
                            ),
                        );
                    }
                    return true;
                }
                Ok(n) => {
                    conn.rbuf.push(&buf[..n]);
                    self.admit_frames(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Move complete frames out of the read buffer and dispatch them,
    /// stopping at the admission bound (backpressure) or a drain.
    fn admit_frames(&mut self, token: u64, conn: &mut Conn) {
        while !self.draining && !conn.read_closed && conn.inflight < self.max_inflight {
            match conn.rbuf.next_frame() {
                Ok(Some(payload)) => self.dispatch(token, conn, payload),
                Ok(None) => return,
                Err(e) => {
                    // Framing violation: report once, then stop
                    // reading — resynchronization is not possible.
                    self.queue_inline_error(
                        conn,
                        ErrorBody::new(ErrorKind::Protocol, e.to_string()),
                    );
                    conn.read_closed = true;
                    return;
                }
            }
        }
    }

    /// Route one admitted frame: `stats`/`shutdown` (and undecodable
    /// small payloads) are answered inline by the poll loop; real work
    /// goes to the worker pool.
    fn dispatch(&mut self, token: u64, conn: &mut Conn, payload: String) {
        if payload.len() <= INLINE_MAX {
            match RequestEnvelope::decode(&payload) {
                Ok(env) => match env.request {
                    Request::Stats => {
                        let resp = ResponseEnvelope {
                            version: env.version,
                            id: env.id,
                            response: Response::Stats(stats_report(&self.state)),
                        };
                        conn.wqueue.push_back(frame_bytes(&resp.encode()));
                        return;
                    }
                    Request::Shutdown => {
                        let resp = ResponseEnvelope {
                            version: env.version,
                            id: env.id,
                            response: Response::Shutdown,
                        };
                        conn.wqueue.push_back(frame_bytes(&resp.encode()));
                        self.start_drain();
                        return;
                    }
                    _ => {} // worker-pool work; the worker re-decodes
                },
                Err(e) => {
                    self.queue_inline_error(conn, e);
                    return;
                }
            }
        }
        conn.inflight += 1;
        self.state.net.inflight.fetch_add(1, Ordering::Relaxed);
        self.state.net.queue_depth.fetch_add(1, Ordering::Relaxed);
        // Send can only fail after the workers exited, i.e. never
        // while frames are still being admitted.
        let _ = self.tx.send(Job {
            token,
            payload,
            enqueued: Instant::now(),
        });
    }

    /// Queue an error the poll loop produced itself (framing or
    /// decode): answered at the minimum version every supported
    /// client accepts, under id 0 — byte-identical to what the worker
    /// path answered for the same violations before the poll loop
    /// existed.
    fn queue_inline_error(&mut self, conn: &mut Conn, e: ErrorBody) {
        let resp = ResponseEnvelope {
            version: MIN_PROTOCOL_VERSION,
            id: 0,
            response: Response::Error(e),
        };
        conn.wqueue.push_back(frame_bytes(&resp.encode()));
    }

    /// Move finished jobs from the workers into their connections'
    /// write queues and drive those connections.
    fn drain_completions(&mut self) {
        let completed = {
            let mut q = self
                .completions
                .lock()
                .expect("completion queue lock poisoned");
            std::mem::take(&mut *q)
        };
        for c in completed {
            self.state.net.inflight.fetch_sub(1, Ordering::Relaxed);
            if c.stop {
                self.start_drain();
            }
            // The connection may already be gone (peer vanished
            // mid-solve): the answer is dropped, as it was when the
            // per-connection writer hit a broken pipe.
            let Some(mut conn) = self.conns.remove(&c.token) else {
                continue;
            };
            conn.inflight -= 1;
            conn.wqueue.push_back(frame_bytes(&c.payload));
            if self.drive_conn(c.token, &mut conn, false) {
                self.conns.insert(c.token, conn);
            } else {
                self.close_conn(conn);
            }
        }
    }

    /// Begin draining: stop accepting at once (the socket file goes
    /// away with the listener), answer what was admitted, then close
    /// everything.
    fn start_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            drop(listener);
        }
        if let Some(path) = self.unlink.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// One drain step: close every connection with nothing left to
    /// deliver (idle peers included — nothing lingers), and decide
    /// whether the loop can exit.
    fn sweep_drain(&mut self) -> bool {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.inflight == 0 && c.wqueue.is_empty())
            .map(|(t, _)| *t)
            .collect();
        for token in done {
            if let Some(conn) = self.conns.remove(&token) {
                self.close_conn(conn);
            }
        }
        let inflight = self.state.net.inflight.load(Ordering::Relaxed);
        if inflight == 0 && self.conns.is_empty() {
            return true;
        }
        if inflight == 0 {
            // Everything is answered; only unflushed peers remain.
            let deadline = *self
                .drain_deadline
                .get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
            if Instant::now() >= deadline {
                for (_, conn) in std::mem::take(&mut self.conns) {
                    self.close_conn(conn);
                }
                return true;
            }
        } else {
            self.drain_deadline = None;
        }
        false
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.state.net.connections.fetch_sub(1, Ordering::Relaxed);
        // Dropping the stream closes the socket.
    }
}

/// Flush the write queue until empty or the socket would block.
/// Returns false when the peer is gone.
fn flush(conn: &mut Conn) -> bool {
    loop {
        let Some(front) = conn.wqueue.front() else {
            return true;
        };
        match conn.stream.write(&front[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.wpos += n;
                if conn.wpos == front.len() {
                    conn.wqueue.pop_front();
                    conn.wpos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

fn worker_loop(
    worker_id: usize,
    rx: &Arc<Mutex<mpsc::Receiver<Job>>>,
    state: &State,
    completions: &Arc<Mutex<Vec<Completion>>>,
    poller: &Arc<Poller>,
) {
    let engine = Engine::new(state.power).threads(1);
    let pool = state.workers.len() as u64;
    loop {
        let job = match rx.lock().expect("job queue lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: daemon is draining
        };
        state.net.queue_depth.fetch_sub(1, Ordering::Relaxed);
        state.workers[worker_id]
            .requests
            .fetch_add(1, Ordering::Relaxed);
        // Go active, then borrow whatever is left of the pool for this
        // request: an exact search on a boosted engine (`threads ≥ 2`)
        // runs the parallel partition sweep on the borrowed slots.
        // The borrow is sized so the pool's slot count is respected at
        // reservation time; jobs arriving mid-solve still get served
        // (they time-share rather than wait).
        state.active.fetch_add(1, Ordering::AcqRel);
        let extra = reserve_spares(&state.active, pool);
        // The engine's profiling counters are thread-local, and the
        // parallel search folds its subtree workers' totals into the
        // calling thread — this one. The delta across the request is
        // exactly this request's events.
        let before = reclaim_core::engine::profiling::counts();
        let tg_before = taskgraph::profiling::counts();
        let (resp, stop) = if extra > 0 {
            let boosted = engine.clone().threads(1 + extra as usize);
            handle_payload(&job.payload, worker_id, state, &boosted, job.enqueued)
        } else {
            handle_payload(&job.payload, worker_id, state, &engine, job.enqueued)
        };
        let delta = reclaim_core::engine::profiling::counts() - before;
        let tg_delta = taskgraph::profiling::counts() - tg_before;
        // Flush the deltas into the shared counters strictly before
        // the response is handed to the poll loop: a client that has
        // seen this response and then asks for `stats` (even as the
        // last request before `shutdown`) must see this solve's
        // counters, exactly once — no flush may ride on a worker
        // surviving past the drain.
        let counters = &state.workers[worker_id];
        counters
            .warm_lost
            .fetch_add(delta.warm_lost, Ordering::Relaxed);
        counters
            .bnb_nodes
            .fetch_add(delta.bnb_nodes, Ordering::Relaxed);
        counters
            .bnb_steals
            .fetch_add(delta.bnb_steals, Ordering::Relaxed);
        counters
            .bnb_cancelled
            .fetch_add(delta.bnb_cancelled, Ordering::Relaxed);
        counters
            .sp_splice
            .fetch_add(tg_delta.sp_splice, Ordering::Relaxed);
        counters
            .sp_splice_miss
            .fetch_add(tg_delta.sp_splice_miss, Ordering::Relaxed);
        counters
            .cone_nodes
            .fetch_add(tg_delta.cone_nodes, Ordering::Relaxed);
        state.active.fetch_sub(1 + extra, Ordering::AcqRel);
        completions
            .lock()
            .expect("completion queue lock poisoned")
            .push(Completion {
                token: job.token,
                payload: resp.encode(),
                stop,
            });
        // Wake the poll loop so the answer reaches its write queue.
        poller.notify();
    }
}

/// The live stats snapshot, shared by the poll loop's inline `stats`
/// path and the worker path (a `stats` payload an odd client padded
/// past [`INLINE_MAX`] still answers identically).
fn stats_report(state: &State) -> StatsReport {
    StatsReport {
        cache: state.cache.stats(),
        store: state.store.as_ref().map(|s| s.stats()).unwrap_or_default(),
        net: state.net.report(),
        workers: state
            .workers
            .iter()
            .map(|w| WorkerStatsReport {
                requests: w.requests.load(Ordering::Relaxed),
                solves: w.solves.load(Ordering::Relaxed),
                solve_ns: w.solve_ns.load(Ordering::Relaxed),
                warm_lost: w.warm_lost.load(Ordering::Relaxed),
                bnb_nodes: w.bnb_nodes.load(Ordering::Relaxed),
                bnb_steals: w.bnb_steals.load(Ordering::Relaxed),
                bnb_cancelled: w.bnb_cancelled.load(Ordering::Relaxed),
                sp_splice: w.sp_splice.load(Ordering::Relaxed),
                sp_splice_miss: w.sp_splice_miss.load(Ordering::Relaxed),
                cone_nodes: w.cone_nodes.load(Ordering::Relaxed),
            })
            .collect(),
    }
}

/// Decode, dispatch, and answer one frame payload. `enqueued` is when
/// the poll loop admitted the frame: a request carrying a
/// `timeout_ms` budget that already out-waited it in the queue is
/// answered with the `timeout` error kind instead of being solved.
fn handle_payload(
    payload: &str,
    worker_id: usize,
    state: &State,
    engine: &Engine,
    enqueued: Instant,
) -> (ResponseEnvelope, bool) {
    let env = match RequestEnvelope::decode(payload) {
        Ok(env) => env,
        Err(e) => {
            // The request never decoded, so its version is unknown:
            // answer at the minimum version every supported client
            // accepts, so a v1-only peer sees the real diagnostic
            // instead of a version error of its own.
            return (
                ResponseEnvelope {
                    version: MIN_PROTOCOL_VERSION,
                    id: 0,
                    response: Response::Error(e),
                },
                false,
            );
        }
    };
    let id = env.id;
    let version = env.version;
    if let Some(budget_ms) = env.timeout_ms {
        let waited = enqueued.elapsed();
        if waited >= Duration::from_millis(budget_ms) {
            state.net.timeouts.fetch_add(1, Ordering::Relaxed);
            return (
                ResponseEnvelope {
                    version,
                    id,
                    response: Response::Error(ErrorBody::new(
                        ErrorKind::Timeout,
                        format!(
                            "request waited {} ms in queue, over its timeout_ms budget of {budget_ms} ms; not solved",
                            waited.as_millis()
                        ),
                    )),
                },
                false,
            );
        }
    }
    // `as_of` (v5) rewinds a solve/energy_curve to a historical
    // version; on any other request type it is a client error, not
    // silence.
    if env.as_of.is_some()
        && !matches!(
            env.request,
            Request::Solve { .. } | Request::EnergyCurve { .. }
        )
    {
        return (
            ResponseEnvelope {
                version,
                id,
                response: Response::Error(ErrorBody::new(
                    ErrorKind::BadRequest,
                    "\"as_of\" applies only to solve and energy_curve requests".to_string(),
                )),
            },
            false,
        );
    }
    let as_of = env.as_of;
    let counters = &state.workers[worker_id];
    let mut stop = false;
    let response = match env.request {
        Request::Solve {
            graph,
            model,
            deadline,
        } => {
            let solved = prepare_maybe_as_of(state, graph, &model, as_of).and_then(
                |(inst, cached, prep_ns, key)| {
                    timed_solve(
                        state, engine, counters, worker_id, &inst, &model, deadline, cached,
                        prep_ns, key,
                    )
                    .map_err(|e| ErrorBody::from(&e))
                },
            );
            match solved {
                Ok(report) => Response::Solve(report),
                Err(e) => Response::Error(e),
            }
        }
        Request::SolveDeadlines {
            graph,
            model,
            deadlines,
        } => {
            let (inst, cached, prep_ns, key) = prepare(state, graph, &model);
            let items = deadlines
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    // Preparation cost is attributed to the first item.
                    let prep_ns = if i == 0 { prep_ns } else { 0 };
                    timed_solve(
                        state, engine, counters, worker_id, &inst, &model, d, cached, prep_ns, key,
                    )
                    .map_err(|e| ErrorBody::from(&e))
                })
                .collect();
            Response::Deadlines(items)
        }
        Request::EnergyCurve {
            graph,
            model,
            points,
            lo,
            hi,
            exact,
        } => match prepare_maybe_as_of(state, graph, &model, as_of) {
            Err(e) => Response::Error(e),
            Ok((inst, _, _, key)) => {
                let t0 = Instant::now();
                let result = if exact {
                    curve_exact_one(state, engine, &inst, &model, lo, hi, key)
                } else {
                    engine
                        .energy_curve(&inst.view(), &model, points, lo, hi)
                        .map(|curve| {
                            Response::Curve(curve.iter().map(|p| (p.deadline, p.energy)).collect())
                        })
                        .unwrap_or_else(|e| Response::Error(ErrorBody::from(&e)))
                };
                counters
                    .solve_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                counters.solves.fetch_add(1, Ordering::Relaxed);
                result
            }
        },
        Request::Batch { model, jobs } => Response::Batch(
            jobs.into_iter()
                .map(|(graph, deadline)| {
                    solve_one(state, engine, counters, worker_id, graph, &model, deadline)
                })
                .collect(),
        ),
        // Normally answered inline by the poll loop; kept here so a
        // padded (>INLINE_MAX) stats payload still answers correctly.
        Request::Stats => Response::Stats(stats_report(state)),
        Request::Corpus { shards, jobs } => corpus_one(state, engine, counters, shards, jobs),
        Request::Patch {
            base,
            edits,
            deadline,
        } => patch_one(state, engine, counters, worker_id, base, &edits, deadline),
        Request::Lineage { key } => match &state.store {
            Some(store) => {
                let hops = store.lineage_of(key);
                Response::Lineage(LineageReport {
                    key,
                    depth: hops.len() as u64,
                    hops,
                })
            }
            None => Response::Error(ErrorBody::new(
                ErrorKind::BadRequest,
                "\"lineage\" requires a daemon started with --store".to_string(),
            )),
        },
        Request::Shutdown => {
            stop = true;
            Response::Shutdown
        }
    };
    (
        ResponseEnvelope {
            version,
            id,
            response,
        },
        stop,
    )
}

/// Handle one v4 `corpus` request: the same deterministic
/// content-addressed sharding as [`crate::corpus::run_corpus`]
/// (`shard = content_key mod N`, entries sorted by name within a
/// shard), but solved through the daemon's content-addressed cache —
/// repeat instances skip preparation, and Vdd-Hopping solves ride the
/// entry's retained LP basis. Shards run sequentially on this worker;
/// cross-shard parallelism comes from the pool, not from nested
/// threads — the solves are pinned to one thread (never the borrowed
/// spare slots) so algorithm tags, and therefore shard manifests, are
/// byte-identical to a local `reclaim corpus` run of the same jobs
/// regardless of how busy the daemon happens to be.
fn corpus_one(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    shards: usize,
    jobs: Vec<crate::corpus::CorpusJob>,
) -> Response {
    use crate::corpus::{CorpusEntry, CorpusJob, ShardOutcome};
    let engine = &engine.clone().threads(1);
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<(u128, CorpusJob)>> = (0..shards).map(|_| Vec::new()).collect();
    for job in jobs {
        let key = content_key(&job.graph, &job.model);
        buckets[(key % shards as u128) as usize].push((key, job));
    }
    for bucket in &mut buckets {
        bucket.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    }
    let outcomes = buckets
        .into_iter()
        .enumerate()
        .map(|(shard, bucket)| {
            let t0 = Instant::now();
            let entries: Vec<CorpusEntry> = bucket
                .into_iter()
                .map(|(key, job)| {
                    let CorpusJob {
                        name,
                        graph,
                        model,
                        deadline,
                    } = job;
                    let tasks = graph.n();
                    let (inst, _, _, cache_key) = prepare(state, graph, &model);
                    debug_assert_eq!(key, cache_key);
                    let result = match state.cache.warm_slot(cache_key) {
                        Some(slot) if matches!(model, EnergyModel::VddHopping(_)) => {
                            solve_with_slot(engine, &inst, &model, deadline, &slot)
                        }
                        _ => engine.solve(&inst.view(), &model, deadline),
                    }
                    .map(|sol| (sol.energy, sol.algorithm.to_string()))
                    .map_err(|e| ErrorBody::from(&e));
                    counters.solves.fetch_add(1, Ordering::Relaxed);
                    CorpusEntry {
                        name,
                        key,
                        tasks,
                        deadline,
                        model: model.name().to_string(),
                        result,
                    }
                })
                .collect();
            let elapsed = t0.elapsed();
            counters
                .solve_ns
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
            ShardOutcome {
                shard,
                shards,
                entries,
                elapsed_ns: elapsed.as_nanos(),
            }
        })
        .collect();
    Response::Corpus(outcomes)
}

/// Handle one v2 `patch`: edit the cached base instance in place
/// (selective invalidation + incremental re-key, see
/// [`InstanceCache::patch`]) and solve the result. Vdd-Hopping solves
/// route through the entry's retained LP basis when one is available
/// ([`Engine::solve_warm`]), so a weight-only patch skips graph
/// preparation *and* the cold LP.
fn patch_one(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    base: u128,
    edits: &[taskgraph::edit::GraphEdit],
    deadline: f64,
) -> Response {
    let patched = match state.cache.patch(base, edits) {
        Ok(p) => p,
        Err(PatchError::UnknownBase) => {
            return Response::Error(ErrorBody::new(
                ErrorKind::UnknownBase,
                format!(
                    "no cached instance for base {} (send the full instance instead)",
                    crate::proto::key_to_hex(base)
                ),
            ))
        }
        Err(PatchError::Edit(e)) => {
            return Response::Error(ErrorBody::new(ErrorKind::BadRequest, e.to_string()))
        }
    };
    let t0 = Instant::now();
    let result = solve_with_slot(
        engine,
        &patched.inst,
        &patched.model,
        deadline,
        &patched.warm,
    );
    let solve_ns = t0.elapsed().as_nanos() as u64;
    counters.solves.fetch_add(1, Ordering::Relaxed);
    counters.solve_ns.fetch_add(solve_ns, Ordering::Relaxed);
    match result {
        Ok(sol) => Response::Patch(PatchReport {
            report: SolveReport {
                energy: sol.energy,
                algorithm: sol.algorithm.to_string(),
                makespan: sol.schedule.makespan(patched.inst.graph()),
                solve_ns,
                prep_ns: patched.prep_ns,
                cached: true,
                worker: worker_id as u64,
            },
            key: patched.key,
            warm_lp: sol.algorithm == "vdd-lp-warm",
        }),
        Err(e) => Response::Error(ErrorBody::from(&e)),
    }
}

/// Cache-or-prepare the instance for `(graph, model)`. Returns the
/// content key alongside so solve paths can reach the entry's warm
/// slot. A store re-materialization counts as cached with `prep_ns 0`
/// — preparation was not re-paid, which is what the field measures.
fn prepare(
    state: &State,
    graph: TaskGraph,
    model: &EnergyModel,
) -> (Arc<PreparedInstance>, bool, u64, u128) {
    let key = content_key(&graph, model);
    let t0 = Instant::now();
    let (inst, outcome) = state
        .cache
        .get_or_prepare(key, model, move || PreparedInstance::new(Arc::new(graph)));
    let prep_ns = if outcome.cached() {
        0
    } else {
        t0.elapsed().as_nanos() as u64
    };
    (inst, outcome.cached(), prep_ns, key)
}

/// [`prepare`], or — when the request carried `as_of: depth` (v5) —
/// the historical version `depth` recorded patches up the lineage
/// chain from the request's content key.
fn prepare_maybe_as_of(
    state: &State,
    graph: TaskGraph,
    model: &EnergyModel,
    as_of: Option<u64>,
) -> Result<(Arc<PreparedInstance>, bool, u64, u128), ErrorBody> {
    match as_of {
        None => Ok(prepare(state, graph, model)),
        Some(depth) => rewind(state, &graph, model, depth),
    }
}

/// Resolve the ancestor `depth` recorded patches up from
/// `(graph, model)`'s content key and materialize it: from RAM when
/// live, else from the store (direct file, or O(edits) lineage
/// replay). The materialized version enters the cache under its own
/// key, so repeat time-travel queries are plain hits. Historical
/// versions always report `cached: true`; `prep_ns` is the
/// materialization cost (0 from RAM).
fn rewind(
    state: &State,
    graph: &TaskGraph,
    model: &EnergyModel,
    depth: u64,
) -> Result<(Arc<PreparedInstance>, bool, u64, u128), ErrorBody> {
    let Some(store) = &state.store else {
        return Err(ErrorBody::new(
            ErrorKind::BadRequest,
            "\"as_of\" requires a daemon started with --store".to_string(),
        ));
    };
    let key = content_key(graph, model);
    let Some(ancestor) = store.ancestor_at(key, depth) else {
        return Err(ErrorBody::new(
            ErrorKind::BadRequest,
            format!(
                "no version {depth} patches before {}: the recorded lineage is shorter",
                key_to_hex(key)
            ),
        ));
    };
    if let Some(inst) = state.cache.peek(ancestor) {
        return Ok((inst, true, 0, ancestor));
    }
    let t0 = Instant::now();
    let Some(entry) = store.materialize(ancestor) else {
        return Err(ErrorBody::new(
            ErrorKind::BadRequest,
            format!(
                "historical version {} (as_of {depth}) is no longer materializable from the store",
                key_to_hex(ancestor)
            ),
        ));
    };
    let stored = entry.inst;
    let (inst, _) = state
        .cache
        .get_or_prepare(ancestor, &entry.model, move || stored);
    Ok((inst, true, t0.elapsed().as_nanos() as u64, ancestor))
}

/// Run `f` with the entry's Vdd warm handle taken out of its slot,
/// **without** holding the lock across the work: the handle is taken
/// under a short lock, the LP runs unlocked (a concurrent solve of the
/// same key just runs cold — wasted work, never serialization), and
/// the refreshed handle is put back afterwards (last writer wins). A
/// poisoned slot is reclaimed rather than propagated — the handle
/// inside is either intact or `None`, and either is a valid starting
/// point.
fn with_warm_slot<T>(
    slot: &crate::cache::WarmSlot,
    f: impl FnOnce(&mut Option<reclaim_core::engine::VddWarm>) -> T,
) -> T {
    let mut warm = match slot.lock() {
        Ok(mut guard) => guard.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    let out = f(&mut warm);
    if let Some(handle) = warm {
        match slot.lock() {
            Ok(mut guard) => *guard = Some(handle),
            Err(poisoned) => *poisoned.into_inner() = Some(handle),
        }
    }
    out
}

/// Solve through the entry's Vdd warm slot (see [`with_warm_slot`]).
fn solve_with_slot(
    engine: &Engine,
    inst: &PreparedInstance,
    model: &EnergyModel,
    deadline: f64,
    slot: &crate::cache::WarmSlot,
) -> Result<reclaim_core::Solution, reclaim_core::SolveError> {
    with_warm_slot(slot, |warm| {
        engine.solve_warm(&inst.view(), model, deadline, warm)
    })
}

/// Handle one v3 exact `energy_curve`: serve the cached instance's
/// retained curve when the deadline factors match (near-free repeat),
/// otherwise walk it — through the entry's retained Vdd LP basis, so
/// an instance the daemon has solved before skips the cold two-phase
/// LP — and retain the result in the entry's curve slot.
fn curve_exact_one(
    state: &State,
    engine: &Engine,
    inst: &PreparedInstance,
    model: &EnergyModel,
    lo: f64,
    hi: f64,
    key: u128,
) -> Response {
    let slot = state.cache.curve_slot(key);
    if let Some(slot) = &slot {
        let guard = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(c) = guard.as_ref() {
            if c.lo == lo && c.hi == hi {
                return Response::CurveExact(CurveExactReport {
                    segments: c.curve.segments.clone(),
                    exact: c.curve.exact,
                    cached_curve: true,
                });
            }
        }
    }
    let result = match state.cache.warm_slot(key) {
        Some(warm_slot) if matches!(model, EnergyModel::VddHopping(_)) => {
            with_warm_slot(&warm_slot, |warm| {
                engine.energy_curve_exact_warm(&inst.view(), model, lo, hi, warm)
            })
        }
        _ => engine.energy_curve_exact(&inst.view(), model, lo, hi),
    };
    match result {
        Ok(curve) => {
            let curve = Arc::new(curve);
            if let Some(slot) = &slot {
                let cached = CachedCurve {
                    lo,
                    hi,
                    curve: Arc::clone(&curve),
                };
                match slot.lock() {
                    Ok(mut guard) => *guard = Some(cached),
                    Err(poisoned) => *poisoned.into_inner() = Some(cached),
                }
            }
            // Write-through: the walked curve is the expensive
            // artifact — persist it with the entry so a restarted
            // daemon answers the repeat request from disk.
            if let Some(store) = &state.store {
                let cached = CachedCurve {
                    lo,
                    hi,
                    curve: Arc::clone(&curve),
                };
                let _ = store.save(key, model, inst, Some(&cached));
            }
            Response::CurveExact(CurveExactReport {
                segments: curve.segments.clone(),
                exact: curve.exact,
                cached_curve: false,
            })
        }
        Err(e) => Response::Error(ErrorBody::from(&e)),
    }
}

fn solve_one(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    graph: TaskGraph,
    model: &EnergyModel,
    deadline: f64,
) -> Result<SolveReport, ErrorBody> {
    let (inst, cached, prep_ns, key) = prepare(state, graph, model);
    timed_solve(
        state, engine, counters, worker_id, &inst, model, deadline, cached, prep_ns, key,
    )
    .map_err(|e| ErrorBody::from(&e))
}

#[allow(clippy::too_many_arguments)]
fn timed_solve(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    inst: &PreparedInstance,
    model: &EnergyModel,
    deadline: f64,
    cached: bool,
    prep_ns: u64,
    key: u128,
) -> Result<SolveReport, reclaim_core::SolveError> {
    let t0 = Instant::now();
    // Vdd-Hopping solves go through the entry's warm slot: the first
    // solve retains its optimal LP basis there, so later solves — and
    // especially weight-only `patch` re-solves — re-optimize instead
    // of running the two phases cold.
    let result = match state.cache.warm_slot(key) {
        Some(slot) if matches!(model, EnergyModel::VddHopping(_)) => {
            solve_with_slot(engine, inst, model, deadline, &slot)
        }
        _ => engine.solve(&inst.view(), model, deadline),
    };
    let solve_ns = t0.elapsed().as_nanos() as u64;
    counters.solves.fetch_add(1, Ordering::Relaxed);
    counters.solve_ns.fetch_add(solve_ns, Ordering::Relaxed);
    result.map(|sol| SolveReport {
        energy: sol.energy,
        algorithm: sol.algorithm.to_string(),
        makespan: sol.schedule.makespan(inst.graph()),
        solve_ns,
        prep_ns,
        cached,
        worker: worker_id as u64,
    })
}
