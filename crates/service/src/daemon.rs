//! `reclaimd` — the long-lived solve daemon.
//!
//! Architecture (std only — no async runtime; the engine is `Sync`
//! and thread-scoped, so the remaining work really is protocol plus
//! cache eviction, as the roadmap predicted):
//!
//! ```text
//!            accept loop (Daemon::run, caller's thread)
//!                 │ one reader thread per connection
//!                 ▼
//!   frames ──► mpsc job queue ──► fixed worker pool (N std threads)
//!                                    │  content-addressed cache
//!                                    │  (Arc<PreparedInstance>, LRU)
//!                                    ▼
//!                       response frame → per-connection writer lock
//! ```
//!
//! Workers pull jobs from one shared queue, so requests from all
//! connections interleave freely; responses echo the request `id`, and
//! a pipelined client must match on it (two requests on one connection
//! may complete out of order). Each worker owns a single-threaded
//! [`Engine`], making the pool size the daemon's one parallelism knob:
//! a worker that pulls a job while the rest of the pool is idle
//! borrows the spare slots and runs that request on a boosted engine
//! (`threads = 1 + spares`), so exact branch-and-bound solves use the
//! parallel partition sweep when the daemon has capacity — total
//! solving threads stay bounded by `--workers` at reservation time.
//!
//! `shutdown` stops the accept loop (nudging it with a self-
//! connection), drops the job queue, and joins the workers once every
//! open connection has drained. Clients that hold a connection open
//! after shutdown keep their reader thread alive until they close —
//! send `shutdown` last, as `reclaim ask --shutdown` does.

use crate::cache::{CacheConfig, CachedCurve, InstanceCache, PatchError};
use crate::proto::{
    read_frame, write_frame, CurveExactReport, ErrorBody, ErrorKind, PatchReport, Request,
    RequestEnvelope, Response, ResponseEnvelope, SolveReport, StatsReport, WorkerStatsReport,
    MIN_PROTOCOL_VERSION,
};
use models::{EnergyModel, PowerLaw};
use reclaim_core::engine::content_key;
use reclaim_core::Engine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use taskgraph::{PreparedInstance, TaskGraph};

/// Where a daemon listens / where a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (the default transport).
    Unix(PathBuf),
    /// A TCP address.
    Tcp(SocketAddr),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path to bind (ignored when `tcp` is set).
    pub socket: PathBuf,
    /// Optional TCP bind address (e.g. `127.0.0.1:0`); overrides the
    /// Unix socket.
    pub tcp: Option<String>,
    /// Worker pool size (defaults to available parallelism).
    pub workers: usize,
    /// Cache budgets.
    pub cache: CacheConfig,
    /// The power law every solve uses.
    pub power: PowerLaw,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("reclaimd.sock"),
            tcp: None,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache: CacheConfig::default(),
            power: PowerLaw::CUBIC,
        }
    }
}

/// Parse `reclaimd`-style flags into a config (shared by the
/// `reclaimd` binary and `reclaim serve`).
///
/// ```text
/// --socket PATH        unix socket path   (default reclaimd.sock)
/// --tcp ADDR           listen on TCP instead (e.g. 127.0.0.1:7421)
/// --workers N          worker pool size   (default: CPUs)
/// --cache-entries N    cache entry budget (default 64)
/// --cache-bytes B      cache byte budget  (default 256 MiB)
/// --alpha A            power-law exponent (default 3)
/// ```
pub fn config_from_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut cfg = DaemonConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value"))
                .cloned()
        };
        match flag.as_str() {
            "--socket" => cfg.socket = PathBuf::from(value()?),
            "--tcp" => cfg.tcp = Some(value()?),
            "--workers" => {
                cfg.workers = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers needs an integer ≥ 1")?;
            }
            "--cache-entries" => {
                cfg.cache.max_entries = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--cache-entries needs an integer ≥ 1")?;
            }
            "--cache-bytes" => {
                cfg.cache.max_bytes = value()?
                    .parse::<usize>()
                    .map_err(|_| "--cache-bytes needs an integer")?;
            }
            "--alpha" => {
                let a: f64 = value()?.parse().map_err(|_| "--alpha needs a number")?;
                if !(a.is_finite() && a > 1.0) {
                    return Err("--alpha must be finite and > 1".into());
                }
                cfg.power = PowerLaw::new(a);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cfg)
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Either stream type, as one readable/writable object.
pub(crate) enum Stream {
    /// Unix-domain.
    Unix(UnixStream),
    /// TCP.
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    pub(crate) fn connect(ep: &Endpoint) -> io::Result<Stream> {
        Ok(match ep {
            Endpoint::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
            Endpoint::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // Frames are small request/response pairs; latency
                // beats batching.
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[derive(Default)]
struct WorkerCounters {
    requests: AtomicU64,
    solves: AtomicU64,
    solve_ns: AtomicU64,
    warm_lost: AtomicU64,
    bnb_nodes: AtomicU64,
    bnb_steals: AtomicU64,
    bnb_cancelled: AtomicU64,
}

struct State {
    cache: InstanceCache,
    power: PowerLaw,
    shutdown: AtomicBool,
    workers: Vec<WorkerCounters>,
    /// Thread slots currently in use across the pool: each busy
    /// worker holds one, plus any spare slots it borrowed for a
    /// parallel exact search. The invariant `active ≤ workers.len()`
    /// keeps the daemon's total solving threads bounded by
    /// `--workers` no matter how solves and borrows interleave.
    active: AtomicU64,
}

/// Reserve every currently-idle pool slot for one request's parallel
/// search. Returns how many extra slots were borrowed (0 when the
/// pool is saturated); the caller must release `1 + extra` slots when
/// the request completes.
fn reserve_spares(active: &AtomicU64, pool: u64) -> u64 {
    let mut cur = active.load(Ordering::Relaxed);
    loop {
        if cur >= pool {
            return 0;
        }
        let extra = pool - cur;
        match active.compare_exchange_weak(cur, cur + extra, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return extra,
            Err(observed) => cur = observed,
        }
    }
}

struct Job {
    payload: String,
    writer: Arc<Mutex<Stream>>,
}

/// A bound-but-not-yet-running daemon. Binding and running are split
/// so callers (tests, the X7 experiment) can learn the resolved
/// endpoint — e.g. the ephemeral port of `--tcp 127.0.0.1:0` — before
/// blocking in [`Daemon::run`].
pub struct Daemon {
    listener: Listener,
    endpoint: Endpoint,
    cfg: DaemonConfig,
    state: Arc<State>,
}

impl Daemon {
    /// Bind the socket. For Unix endpoints a stale socket file from a
    /// dead daemon is removed first.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Daemon> {
        let (listener, endpoint) = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let ep = Endpoint::Tcp(l.local_addr()?);
                (Listener::Tcp(l), ep)
            }
            None => {
                if cfg.socket.exists() {
                    // Refuse to steal a live daemon's socket; only a
                    // dead one (nothing accepting) is reclaimed.
                    if UnixStream::connect(&cfg.socket).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("{} already has a live daemon", cfg.socket.display()),
                        ));
                    }
                    std::fs::remove_file(&cfg.socket)?;
                }
                let l = UnixListener::bind(&cfg.socket)?;
                (Listener::Unix(l), Endpoint::Unix(cfg.socket.clone()))
            }
        };
        let workers = cfg.workers.max(1);
        let state = Arc::new(State {
            cache: InstanceCache::new(cfg.cache),
            power: cfg.power,
            shutdown: AtomicBool::new(false),
            workers: (0..workers).map(|_| WorkerCounters::default()).collect(),
            active: AtomicU64::new(0),
        });
        Ok(Daemon {
            listener,
            endpoint,
            cfg,
            state,
        })
    }

    /// The resolved endpoint clients should connect to.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// Serve until a `shutdown` request arrives, then drain and
    /// return. Consumes the daemon; the socket file (Unix) is removed
    /// on the way out.
    pub fn run(self) -> io::Result<()> {
        let Daemon {
            listener,
            endpoint,
            cfg,
            state,
        } = self;
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<_> = (0..state.workers.len())
            .map(|worker_id| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let endpoint = endpoint.clone();
                std::thread::spawn(move || worker_loop(worker_id, &rx, &state, &endpoint))
            })
            .collect();

        let mut conn_handles = Vec::new();
        loop {
            let stream = match &listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
            };
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let tx = tx.clone();
                    conn_handles.push(std::thread::spawn(move || connection_loop(stream, &tx)));
                }
                Err(e) => {
                    // A transient accept failure is not fatal.
                    eprintln!("reclaimd: accept failed: {e}");
                }
            }
        }
        drop(listener);
        if let Endpoint::Unix(_) = endpoint {
            let _ = std::fs::remove_file(&cfg.socket);
        }
        // The queue closes once the last reader thread exits; workers
        // then drain and stop.
        drop(tx);
        for h in conn_handles {
            let _ = h.join();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Convenience: bind and run in one call.
pub fn run(cfg: DaemonConfig) -> io::Result<()> {
    Daemon::bind(cfg)?.run()
}

/// Read frames off one connection and enqueue them for the pool.
fn connection_loop(stream: Stream, tx: &mpsc::Sender<Job>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => {
            eprintln!("reclaimd: cannot clone stream: {e}");
            return;
        }
    };
    let mut reader = stream;
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let job = Job {
                    payload,
                    writer: Arc::clone(&writer),
                };
                if tx.send(job).is_err() {
                    return; // daemon shutting down
                }
            }
            Ok(None) => return, // client closed cleanly
            Err(e) => {
                // Framing violation: report once, then drop the
                // connection — resynchronization is not possible. The
                // peer's version is unknowable here, so answer at the
                // minimum version every supported client accepts.
                let resp = ResponseEnvelope {
                    version: MIN_PROTOCOL_VERSION,
                    id: 0,
                    response: Response::Error(ErrorBody::new(ErrorKind::Protocol, e.to_string())),
                };
                if let Ok(mut w) = writer.lock() {
                    let _ = write_frame(&mut *w, &resp.encode());
                }
                return;
            }
        }
    }
}

fn worker_loop(
    worker_id: usize,
    rx: &Arc<Mutex<mpsc::Receiver<Job>>>,
    state: &State,
    ep: &Endpoint,
) {
    let engine = Engine::new(state.power).threads(1);
    let pool = state.workers.len() as u64;
    loop {
        let job = match rx.lock().expect("job queue lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: daemon is draining
        };
        state.workers[worker_id]
            .requests
            .fetch_add(1, Ordering::Relaxed);
        // Go active, then borrow whatever is left of the pool for this
        // request: an exact search on a boosted engine (`threads ≥ 2`)
        // runs the parallel partition sweep on the borrowed slots.
        // The borrow is sized so the pool's slot count is respected at
        // reservation time; jobs arriving mid-solve still get served
        // (they time-share rather than wait).
        state.active.fetch_add(1, Ordering::AcqRel);
        let extra = reserve_spares(&state.active, pool);
        // The engine's profiling counters are thread-local, and the
        // parallel search folds its subtree workers' totals into the
        // calling thread — this one. The delta across the request is
        // exactly this request's events.
        let before = reclaim_core::engine::profiling::counts();
        let (resp, stop) = if extra > 0 {
            let boosted = engine.clone().threads(1 + extra as usize);
            handle_payload(&job.payload, worker_id, state, &boosted)
        } else {
            handle_payload(&job.payload, worker_id, state, &engine)
        };
        let delta = reclaim_core::engine::profiling::counts() - before;
        // Flush the deltas into the shared counters strictly before
        // the response frame goes out: a client that has seen this
        // response and then asks for `stats` (even as the last
        // request before `shutdown`) must see this solve's counters,
        // exactly once — no flush may ride on a worker surviving past
        // the drain.
        let counters = &state.workers[worker_id];
        counters
            .warm_lost
            .fetch_add(delta.warm_lost, Ordering::Relaxed);
        counters
            .bnb_nodes
            .fetch_add(delta.bnb_nodes, Ordering::Relaxed);
        counters
            .bnb_steals
            .fetch_add(delta.bnb_steals, Ordering::Relaxed);
        counters
            .bnb_cancelled
            .fetch_add(delta.bnb_cancelled, Ordering::Relaxed);
        state.active.fetch_sub(1 + extra, Ordering::AcqRel);
        if let Ok(mut w) = job.writer.lock() {
            // A vanished client is not a daemon error.
            let _ = write_frame(&mut *w, &resp.encode());
        }
        if stop {
            state.shutdown.store(true, Ordering::SeqCst);
            // Nudge the accept loop so it observes the flag — but keep
            // pulling jobs: requests racing the shutdown (or arriving
            // on connections that haven't closed yet) must still be
            // answered, or their clients would hang and the drain in
            // `Daemon::run` would never finish. The loop ends when the
            // last connection thread drops its sender.
            let _ = Stream::connect(ep);
        }
    }
}

/// Decode, dispatch, and answer one frame payload.
fn handle_payload(
    payload: &str,
    worker_id: usize,
    state: &State,
    engine: &Engine,
) -> (ResponseEnvelope, bool) {
    let env = match RequestEnvelope::decode(payload) {
        Ok(env) => env,
        Err(e) => {
            // The request never decoded, so its version is unknown:
            // answer at the minimum version every supported client
            // accepts, so a v1-only peer sees the real diagnostic
            // instead of a version error of its own.
            return (
                ResponseEnvelope {
                    version: MIN_PROTOCOL_VERSION,
                    id: 0,
                    response: Response::Error(e),
                },
                false,
            );
        }
    };
    let id = env.id;
    let version = env.version;
    let counters = &state.workers[worker_id];
    let mut stop = false;
    let response = match env.request {
        Request::Solve {
            graph,
            model,
            deadline,
        } => match solve_one(state, engine, counters, worker_id, graph, &model, deadline) {
            Ok(report) => Response::Solve(report),
            Err(e) => Response::Error(e),
        },
        Request::SolveDeadlines {
            graph,
            model,
            deadlines,
        } => {
            let (inst, cached, prep_ns, key) = prepare(state, graph, &model);
            let items = deadlines
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    // Preparation cost is attributed to the first item.
                    let prep_ns = if i == 0 { prep_ns } else { 0 };
                    timed_solve(
                        state, engine, counters, worker_id, &inst, &model, d, cached, prep_ns, key,
                    )
                    .map_err(|e| ErrorBody::from(&e))
                })
                .collect();
            Response::Deadlines(items)
        }
        Request::EnergyCurve {
            graph,
            model,
            points,
            lo,
            hi,
            exact,
        } => {
            let (inst, _, _, key) = prepare(state, graph, &model);
            let t0 = Instant::now();
            let result = if exact {
                curve_exact_one(state, engine, &inst, &model, lo, hi, key)
            } else {
                engine
                    .energy_curve(&inst.view(), &model, points, lo, hi)
                    .map(|curve| {
                        Response::Curve(curve.iter().map(|p| (p.deadline, p.energy)).collect())
                    })
                    .unwrap_or_else(|e| Response::Error(ErrorBody::from(&e)))
            };
            counters
                .solve_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            counters.solves.fetch_add(1, Ordering::Relaxed);
            result
        }
        Request::Batch { model, jobs } => Response::Batch(
            jobs.into_iter()
                .map(|(graph, deadline)| {
                    solve_one(state, engine, counters, worker_id, graph, &model, deadline)
                })
                .collect(),
        ),
        Request::Stats => Response::Stats(StatsReport {
            cache: state.cache.stats(),
            workers: state
                .workers
                .iter()
                .map(|w| WorkerStatsReport {
                    requests: w.requests.load(Ordering::Relaxed),
                    solves: w.solves.load(Ordering::Relaxed),
                    solve_ns: w.solve_ns.load(Ordering::Relaxed),
                    warm_lost: w.warm_lost.load(Ordering::Relaxed),
                    bnb_nodes: w.bnb_nodes.load(Ordering::Relaxed),
                    bnb_steals: w.bnb_steals.load(Ordering::Relaxed),
                    bnb_cancelled: w.bnb_cancelled.load(Ordering::Relaxed),
                })
                .collect(),
        }),
        Request::Patch {
            base,
            edits,
            deadline,
        } => patch_one(state, engine, counters, worker_id, base, &edits, deadline),
        Request::Shutdown => {
            stop = true;
            Response::Shutdown
        }
    };
    (
        ResponseEnvelope {
            version,
            id,
            response,
        },
        stop,
    )
}

/// Handle one v2 `patch`: edit the cached base instance in place
/// (selective invalidation + incremental re-key, see
/// [`InstanceCache::patch`]) and solve the result. Vdd-Hopping solves
/// route through the entry's retained LP basis when one is available
/// ([`Engine::solve_warm`]), so a weight-only patch skips graph
/// preparation *and* the cold LP.
fn patch_one(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    base: u128,
    edits: &[taskgraph::edit::GraphEdit],
    deadline: f64,
) -> Response {
    let patched = match state.cache.patch(base, edits) {
        Ok(p) => p,
        Err(PatchError::UnknownBase) => {
            return Response::Error(ErrorBody::new(
                ErrorKind::UnknownBase,
                format!(
                    "no cached instance for base {} (send the full instance instead)",
                    crate::proto::key_to_hex(base)
                ),
            ))
        }
        Err(PatchError::Edit(e)) => {
            return Response::Error(ErrorBody::new(ErrorKind::BadRequest, e.to_string()))
        }
    };
    let t0 = Instant::now();
    let result = solve_with_slot(
        engine,
        &patched.inst,
        &patched.model,
        deadline,
        &patched.warm,
    );
    let solve_ns = t0.elapsed().as_nanos() as u64;
    counters.solves.fetch_add(1, Ordering::Relaxed);
    counters.solve_ns.fetch_add(solve_ns, Ordering::Relaxed);
    match result {
        Ok(sol) => Response::Patch(PatchReport {
            report: SolveReport {
                energy: sol.energy,
                algorithm: sol.algorithm.to_string(),
                makespan: sol.schedule.makespan(patched.inst.graph()),
                solve_ns,
                prep_ns: patched.prep_ns,
                cached: true,
                worker: worker_id as u64,
            },
            key: patched.key,
            warm_lp: sol.algorithm == "vdd-lp-warm",
        }),
        Err(e) => Response::Error(ErrorBody::from(&e)),
    }
}

/// Cache-or-prepare the instance for `(graph, model)`. Returns the
/// content key alongside so solve paths can reach the entry's warm
/// slot.
fn prepare(
    state: &State,
    graph: TaskGraph,
    model: &EnergyModel,
) -> (Arc<PreparedInstance>, bool, u64, u128) {
    let key = content_key(&graph, model);
    let t0 = Instant::now();
    let (inst, hit) = state
        .cache
        .get_or_prepare(key, model, move || PreparedInstance::new(Arc::new(graph)));
    let prep_ns = if hit {
        0
    } else {
        t0.elapsed().as_nanos() as u64
    };
    (inst, hit, prep_ns, key)
}

/// Run `f` with the entry's Vdd warm handle taken out of its slot,
/// **without** holding the lock across the work: the handle is taken
/// under a short lock, the LP runs unlocked (a concurrent solve of the
/// same key just runs cold — wasted work, never serialization), and
/// the refreshed handle is put back afterwards (last writer wins). A
/// poisoned slot is reclaimed rather than propagated — the handle
/// inside is either intact or `None`, and either is a valid starting
/// point.
fn with_warm_slot<T>(
    slot: &crate::cache::WarmSlot,
    f: impl FnOnce(&mut Option<reclaim_core::engine::VddWarm>) -> T,
) -> T {
    let mut warm = match slot.lock() {
        Ok(mut guard) => guard.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    let out = f(&mut warm);
    if let Some(handle) = warm {
        match slot.lock() {
            Ok(mut guard) => *guard = Some(handle),
            Err(poisoned) => *poisoned.into_inner() = Some(handle),
        }
    }
    out
}

/// Solve through the entry's Vdd warm slot (see [`with_warm_slot`]).
fn solve_with_slot(
    engine: &Engine,
    inst: &PreparedInstance,
    model: &EnergyModel,
    deadline: f64,
    slot: &crate::cache::WarmSlot,
) -> Result<reclaim_core::Solution, reclaim_core::SolveError> {
    with_warm_slot(slot, |warm| {
        engine.solve_warm(&inst.view(), model, deadline, warm)
    })
}

/// Handle one v3 exact `energy_curve`: serve the cached instance's
/// retained curve when the deadline factors match (near-free repeat),
/// otherwise walk it — through the entry's retained Vdd LP basis, so
/// an instance the daemon has solved before skips the cold two-phase
/// LP — and retain the result in the entry's curve slot.
fn curve_exact_one(
    state: &State,
    engine: &Engine,
    inst: &PreparedInstance,
    model: &EnergyModel,
    lo: f64,
    hi: f64,
    key: u128,
) -> Response {
    let slot = state.cache.curve_slot(key);
    if let Some(slot) = &slot {
        let guard = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(c) = guard.as_ref() {
            if c.lo == lo && c.hi == hi {
                return Response::CurveExact(CurveExactReport {
                    segments: c.curve.segments.clone(),
                    exact: c.curve.exact,
                    cached_curve: true,
                });
            }
        }
    }
    let result = match state.cache.warm_slot(key) {
        Some(warm_slot) if matches!(model, EnergyModel::VddHopping(_)) => {
            with_warm_slot(&warm_slot, |warm| {
                engine.energy_curve_exact_warm(&inst.view(), model, lo, hi, warm)
            })
        }
        _ => engine.energy_curve_exact(&inst.view(), model, lo, hi),
    };
    match result {
        Ok(curve) => {
            let curve = Arc::new(curve);
            if let Some(slot) = &slot {
                let cached = CachedCurve {
                    lo,
                    hi,
                    curve: Arc::clone(&curve),
                };
                match slot.lock() {
                    Ok(mut guard) => *guard = Some(cached),
                    Err(poisoned) => *poisoned.into_inner() = Some(cached),
                }
            }
            Response::CurveExact(CurveExactReport {
                segments: curve.segments.clone(),
                exact: curve.exact,
                cached_curve: false,
            })
        }
        Err(e) => Response::Error(ErrorBody::from(&e)),
    }
}

fn solve_one(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    graph: TaskGraph,
    model: &EnergyModel,
    deadline: f64,
) -> Result<SolveReport, ErrorBody> {
    let (inst, cached, prep_ns, key) = prepare(state, graph, model);
    timed_solve(
        state, engine, counters, worker_id, &inst, model, deadline, cached, prep_ns, key,
    )
    .map_err(|e| ErrorBody::from(&e))
}

#[allow(clippy::too_many_arguments)]
fn timed_solve(
    state: &State,
    engine: &Engine,
    counters: &WorkerCounters,
    worker_id: usize,
    inst: &PreparedInstance,
    model: &EnergyModel,
    deadline: f64,
    cached: bool,
    prep_ns: u64,
    key: u128,
) -> Result<SolveReport, reclaim_core::SolveError> {
    let t0 = Instant::now();
    // Vdd-Hopping solves go through the entry's warm slot: the first
    // solve retains its optimal LP basis there, so later solves — and
    // especially weight-only `patch` re-solves — re-optimize instead
    // of running the two phases cold.
    let result = match state.cache.warm_slot(key) {
        Some(slot) if matches!(model, EnergyModel::VddHopping(_)) => {
            solve_with_slot(engine, inst, model, deadline, &slot)
        }
        _ => engine.solve(&inst.view(), model, deadline),
    };
    let solve_ns = t0.elapsed().as_nanos() as u64;
    counters.solves.fetch_add(1, Ordering::Relaxed);
    counters.solve_ns.fetch_add(solve_ns, Ordering::Relaxed);
    result.map(|sol| SolveReport {
        energy: sol.energy,
        algorithm: sol.algorithm.to_string(),
        makespan: sol.schedule.makespan(inst.graph()),
        solve_ns,
        prep_ns,
        cached,
        worker: worker_id as u64,
    })
}
