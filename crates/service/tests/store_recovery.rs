//! The crash-recovery battery for the disk store (protocol v5).
//!
//! Four layers, matching the store's promises:
//!
//! * **Lossless roundtrip** (property): write → reopen → materialize
//!   reproduces the in-memory prepared instance — same graph, same
//!   analysis snapshot, same content key, bit-identical solve — under
//!   all four energy models.
//! * **Lineage replay** (property): a k-edit patch chain recorded with
//!   only its root instance stored re-materializes every child by
//!   replay, and each hop's key matches the O(edits)
//!   [`patched_key`] delta exactly.
//! * **Corruption fuzz** (property): arbitrary truncations and
//!   single-byte flips anywhere in the store never panic recovery,
//!   account every lost record in `corrupt_skipped`, and leave a
//!   canonical store — a second recovery run is clean and
//!   byte-identical.
//! * **kill -9 under replay** (integration): a real `reclaimd --store`
//!   process is SIGKILLed mid-way through a 1,000-request mixed
//!   solve/patch trace; a restarted daemon answers the whole trace
//!   warm (zero prepare passes, zero errors) with responses
//!   byte-identical to the pre-crash run modulo timing fields.

use models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use proptest::prelude::*;
use reclaim_core::engine::{content_key, patched_key};
use reclaim_core::Engine;
use reclaim_service::client::Client;
use reclaim_service::proto::{key_to_hex, Request, Response, ResponseEnvelope};
use reclaim_service::Store;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use taskgraph::edit::GraphEdit;
use taskgraph::{generators, PreparedInstance, TaskGraph};

/// Fresh scratch directory, unique across tests AND proptest cases in
/// the same process.
fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reclaim-recovery-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sp_graph(seed: u64, n: usize) -> TaskGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_sp(n, 0.55, 1.0, 5.0, &mut rng).0
}

/// The four energy models of the paper, on ladders every model can
/// schedule (top speed 2.0, so `D ≥ cp/2` is feasible everywhere).
fn four_models() -> Vec<EnergyModel> {
    let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    vec![
        EnergyModel::continuous_unbounded(),
        EnergyModel::Discrete(modes.clone()),
        EnergyModel::VddHopping(modes),
        EnergyModel::Incremental(IncrementalModes::new(1.0, 2.0, 0.5).unwrap()),
    ]
}

fn solve(inst: &PreparedInstance, model: &EnergyModel, deadline: f64) -> (u64, &'static str) {
    let sol = Engine::new(PowerLaw::CUBIC)
        .solve(&inst.view(), model, deadline)
        .expect("deadline chosen feasible");
    (sol.energy.to_bits(), sol.algorithm)
}

/// Every file under `dir`, path-sorted, with its exact bytes — the
/// `cmp`-style equality the determinism assertions use.
fn dir_bytes(dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).expect("readable store dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = fs::read(&path).expect("readable store file");
                out.insert(path, bytes);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Write → reopen → materialize is lossless under all four models:
    /// the recovered instance carries the same graph, the same
    /// analysis snapshot, hashes back to the same content key, and
    /// solves to the bit-identical energy by the same algorithm.
    #[test]
    fn store_roundtrip_is_lossless_across_all_four_models(
        seed in any::<u64>(),
        n in 4usize..9,
    ) {
        let g = sp_graph(seed, n);
        let deadline = 1.3 * taskgraph::analysis::critical_path_weight(&g);
        let dir = tmpdir("roundtrip");
        for model in four_models() {
            let key = content_key(&g, &model);
            let inst = PreparedInstance::new(Arc::new(g.clone()));
            inst.warm();
            let direct = solve(&inst, &model, deadline);
            {
                let store = Store::open(&dir, false).unwrap();
                store.save(key, &model, &inst, None).unwrap();
            }
            let store = Store::open(&dir, false).unwrap();
            prop_assert!(store.stats().recovered >= 1);
            prop_assert_eq!(store.stats().corrupt_skipped, 0);
            let entry = store.materialize(key).expect("a clean store recovers its entry");
            prop_assert_eq!(entry.inst.graph(), &g);
            prop_assert_eq!(entry.inst.snapshot(), inst.snapshot());
            prop_assert_eq!(content_key(entry.inst.graph(), &entry.model), key);
            let recovered = solve(&entry.inst, &model, deadline);
            prop_assert_eq!(direct, recovered,
                "recovery changed the answer under {}", model.name());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A k-edit chain recorded in the lineage log — with only the ROOT
    /// instance stored — re-materializes its leaf by replay, in
    /// exactly k replay steps, and every hop's content key matches the
    /// O(edits) `patched_key` delta.
    #[test]
    fn lineage_replay_reproduces_patched_keys(
        seed in any::<u64>(),
        k in 1usize..6,
    ) {
        let g = sp_graph(seed, 10);
        let model = EnergyModel::continuous_unbounded();
        let dir = tmpdir("lineage");
        let store = Store::open(&dir, false).unwrap();

        let mut inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        let root = content_key(&g, &model);
        store.save(root, &model, &inst, None).unwrap();

        let mut key = root;
        let mut xs = seed | 1;
        for step in 0..k {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            let task = (xs as usize) % inst.graph().n();
            // Strictly different weight: an identity patch records no
            // lineage, which would shorten the chain under test.
            let weight = inst.graph().weights()[task] + 0.25 + 0.125 * step as f64;
            let edits = vec![GraphEdit::SetWeight { task, weight }];
            let delta = patched_key(key, inst.graph(), &edits)
                .expect("weight edits keep the task set");
            inst = inst.apply(&edits).unwrap();
            let child = content_key(inst.graph(), &model);
            prop_assert_eq!(delta, child, "patched_key must equal a full rehash");
            store.record_patch(key, &edits, child).unwrap();
            key = child;
        }

        let leaf = store.materialize(key).expect("replay from the stored root");
        prop_assert_eq!(leaf.inst.graph(), inst.graph());
        prop_assert_eq!(content_key(leaf.inst.graph(), &leaf.model), key);
        prop_assert!(leaf.curve.is_none(), "curves never survive replay");
        prop_assert_eq!(store.stats().replays, k as u64);
        prop_assert_eq!(store.ancestor_at(key, k as u64), Some(root));
        prop_assert_eq!(store.ancestor_at(key, k as u64 + 1), None);
        let hops = store.lineage_of(key);
        prop_assert_eq!(hops.len(), k);
        prop_assert_eq!(hops.first().unwrap().parent, root);
        prop_assert_eq!(hops.last().unwrap().child, key);

        // The whole chain survives a restart of the store.
        drop(store);
        let store = Store::open(&dir, false).unwrap();
        prop_assert_eq!(store.stats().corrupt_skipped, 0);
        prop_assert_eq!(store.lineage_of(key).len(), k);
        let again = store.materialize(key).expect("replay after reopen");
        prop_assert_eq!(again.inst.graph(), inst.graph());
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Lineage replay is *repair*, not re-analysis: materializing the
/// leaf of a structural patch chain — an SP-preserving block
/// conversion, a weight nudge, and a second block conversion that
/// collapses the graph to a chain — replays every hop through
/// `PreparedInstance::apply`'s local-repair path. Zero full
/// topological sorts, zero classifications, zero SP recognitions,
/// zero transitive reductions happen during the replay (observable on
/// this thread's profiling counters), exactly one hop splices the SP
/// tree, and the leaf still matches a from-scratch rebuild bit for
/// bit.
#[test]
fn lineage_replay_of_structural_patches_repairs_locally() {
    // Two-block SP graph 0→{1,2}→3→{4,5}→6.
    let g = TaskGraph::new(
        vec![1.0, 2.0, 1.5, 3.0, 0.5, 2.5, 1.0],
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ],
    )
    .unwrap();
    let model = EnergyModel::continuous_unbounded();
    let dir = tmpdir("lineage-structural");

    let hops: Vec<Vec<GraphEdit>> = vec![
        // Convert the second block P(4,5) into the chain 4→5: the SP
        // tree is repaired by splicing only the touched segment.
        vec![
            GraphEdit::RemoveEdge { from: 3, to: 5 },
            GraphEdit::RemoveEdge { from: 4, to: 6 },
            GraphEdit::InsertEdge { from: 4, to: 5 },
        ],
        // Weight-only nudge: everything structural is carried.
        vec![GraphEdit::SetWeight {
            task: 2,
            weight: 2.75,
        }],
        // Convert the first block too — the result is a pure chain,
        // which the cheap specific-shape check classifies outright.
        vec![
            GraphEdit::RemoveEdge { from: 0, to: 2 },
            GraphEdit::RemoveEdge { from: 1, to: 3 },
            GraphEdit::InsertEdge { from: 1, to: 2 },
        ],
    ];

    // Record the chain with only the ROOT instance stored.
    let mut inst = PreparedInstance::new(Arc::new(g.clone()));
    inst.warm();
    let root = content_key(&g, &model);
    {
        let store = Store::open(&dir, false).unwrap();
        store.save(root, &model, &inst, None).unwrap();
        let mut key = root;
        for edits in &hops {
            let delta =
                patched_key(key, inst.graph(), edits).expect("edge edits keep the task set");
            inst = inst.apply(edits).unwrap();
            let child = content_key(inst.graph(), &model);
            assert_eq!(delta, child, "patched_key must equal a full rehash");
            store.record_patch(key, edits, child).unwrap();
            key = child;
        }
    }
    let leaf_key = content_key(inst.graph(), &model);

    // Reopen cold and materialize the leaf by replay, counting every
    // analysis pass the replay performs on this thread.
    let store = Store::open(&dir, false).unwrap();
    let before = taskgraph::profiling::counts();
    let leaf = store
        .materialize(leaf_key)
        .expect("replay from the stored root");
    let delta = taskgraph::profiling::counts() - before;
    assert_eq!(store.stats().replays, hops.len() as u64);

    // The repair contract, across the whole replay (including the
    // final warm-up materialize performs):
    assert_eq!(delta.topo_order, 0, "replay never re-derives an order");
    assert_eq!(delta.classify, 0, "replay never re-classifies");
    assert_eq!(delta.sp_from_graph, 0, "replay never re-recognizes SP");
    assert_eq!(delta.transitive_reduction, 0, "replay never re-reduces");
    assert_eq!(
        delta.sp_splice, 1,
        "exactly the block-conversion hop splices"
    );
    assert_eq!(delta.sp_splice_miss, 0);

    // …and local repair still lands on the exact rebuilt instance.
    assert_eq!(leaf.inst.graph(), inst.graph());
    let fresh = PreparedInstance::new(Arc::new(leaf.inst.graph().clone()));
    fresh.warm();
    assert_eq!(leaf.inst.view().shape(), fresh.view().shape());
    assert_eq!(
        leaf.inst.view().reduced().edges(),
        fresh.view().reduced().edges()
    );
    let deadline = 1.3 * taskgraph::analysis::critical_path_weight(inst.graph());
    assert_eq!(
        solve(&leaf.inst, &model, deadline),
        solve(&fresh, &model, deadline)
    );
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzz the recovery scan: truncate the lineage log at an
    /// arbitrary byte, or flip an arbitrary byte anywhere in the store
    /// (log or instance file). Recovery must never panic, must account
    /// every record it loses in `corrupt_skipped` (when the file's
    /// content was damaged rather than cleanly cut at a record
    /// boundary), and must leave a canonical store: a second recovery
    /// run reports zero skips and changes nothing on disk.
    #[test]
    fn recovery_survives_arbitrary_corruption(
        target_log in any::<bool>(),
        truncate in any::<bool>(),
        frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let dir = tmpdir("fuzz");
        let model = EnergyModel::continuous_unbounded();
        // Three instances and a two-hop lineage chain.
        let mut keys = Vec::new();
        let mut log_record_lens = Vec::new();
        {
            let store = Store::open(&dir, false).unwrap();
            for s in 0..3u64 {
                let g = sp_graph(90 + s, 6);
                let key = content_key(&g, &model);
                let inst = PreparedInstance::new(Arc::new(g));
                inst.warm();
                store.save(key, &model, &inst, None).unwrap();
                keys.push(key);
            }
            let log_before = fs::metadata(dir.join("lineage.log"))
                .map(|m| m.len())
                .unwrap_or(0);
            prop_assert_eq!(log_before, 0);
            let mut prev = 0;
            for w in [7.0, 8.5] {
                let edits = vec![GraphEdit::SetWeight { task: 0, weight: w }];
                let child = keys[0] ^ (w.to_bits() as u128); // distinct synthetic child
                store.record_patch(if prev == 0 { keys[0] } else { prev }, &edits, child).unwrap();
                let len = fs::metadata(dir.join("lineage.log")).unwrap().len() as usize;
                log_record_lens.push(len - log_record_lens.iter().sum::<usize>());
                prev = child;
            }
        }

        // Damage one byte position, chosen by `frac` over the target
        // file's length.
        let target = if target_log {
            dir.join("lineage.log")
        } else {
            let key = keys[(frac * 3.0) as usize % 3];
            dir.join("instances").join(format!("{}.inst", key_to_hex(key)))
        };
        let mut bytes = fs::read(&target).unwrap();
        let full = bytes.len();
        let pos = ((frac * full as f64) as usize).min(full - 1);
        if truncate {
            bytes.truncate(pos);
        } else {
            bytes[pos] ^= mask;
        }
        fs::write(&target, &bytes).unwrap();

        // Recovery run 1: never a panic, never an Err.
        let store = Store::open(&dir, false).unwrap();
        let s1 = store.stats();
        if target_log {
            prop_assert_eq!(s1.recovered, 3, "instance files untouched");
            // A truncation exactly at a record boundary is an append
            // that never durably happened — nothing is damaged,
            // nothing to account. Any other damage sits inside some
            // record and must bump the counter.
            let boundary_cut = truncate && (pos == 0 || pos == log_record_lens[0]);
            if boundary_cut {
                prop_assert_eq!(s1.corrupt_skipped, 0);
            } else {
                prop_assert!(
                    s1.corrupt_skipped >= 1,
                    "damage inside a record must be accounted (pos {pos} of {full})"
                );
            }
            // Records strictly before the damage point always survive
            // (the first record is intact whenever `pos` is past it).
            let children = [
                keys[0] ^ (7.0f64.to_bits() as u128),
                keys[0] ^ (8.5f64.to_bits() as u128),
            ];
            let surviving = children
                .iter()
                .filter(|&&c| store.parent_of(c).is_some())
                .count();
            prop_assert!(
                surviving >= usize::from(pos >= log_record_lens[0]),
                "records before the damage point must be recovered"
            );
            // Every instance still loads.
            for &k in &keys {
                prop_assert!(store.load(k).is_some());
            }
        } else {
            // Exactly the damaged instance file is skipped (accounted,
            // removed); the other two recover and load.
            prop_assert_eq!(s1.recovered, 2);
            prop_assert_eq!(s1.corrupt_skipped, 1);
            prop_assert_eq!(s1.entries, 2);
            prop_assert!(!target.exists(), "damaged file removed after accounting");
            let damaged = keys
                .iter()
                .filter(|&&k| store.load(k).is_none())
                .count();
            prop_assert_eq!(damaged, 1);
        }
        drop(store);

        // Recovery run 2: clean and byte-identical — recovery is a
        // fixpoint (the property the CI smoke step `cmp`-checks).
        let after_first = dir_bytes(&dir);
        let store = Store::open(&dir, false).unwrap();
        let s2 = store.stats();
        prop_assert_eq!(s2.corrupt_skipped, 0, "run 1 left a canonical store");
        prop_assert_eq!(s2.recovered, s2.entries);
        drop(store);
        prop_assert_eq!(dir_bytes(&dir), after_first);
        let _ = fs::remove_dir_all(&dir);
    }
}

// ------------------------------------------------------------------
// kill -9 under a mixed solve/patch replay (the acceptance criterion)
// ------------------------------------------------------------------

const TRACE_GRAPHS: usize = 20;
const TRACE_ROUNDS: usize = 500; // × 2 requests per round = 1,000
const CRASH_AFTER_ROUNDS: usize = 300;

fn trace_graph(i: usize) -> TaskGraph {
    sp_graph(5000 + i as u64, 24)
}

/// Round `r` of the trace: solve graph `r % TRACE_GRAPHS` in pristine
/// form, then patch one task weight (round-dependent, so every round's
/// child key is distinct).
fn trace_round(r: usize, graphs: &[TaskGraph], model: &EnergyModel) -> (Request, Request) {
    let g = &graphs[r % TRACE_GRAPHS];
    let deadline = 1.5 * taskgraph::analysis::critical_path_weight(g) + 10.0;
    let solve = Request::Solve {
        graph: g.clone(),
        model: model.clone(),
        deadline,
    };
    let edits = vec![GraphEdit::SetWeight {
        task: (r * 13) % g.n(),
        weight: 1.0 + ((r * 37) % 80) as f64 / 16.0,
    }];
    let patch = Request::Patch {
        base: content_key(g, model),
        edits,
        deadline,
    };
    (solve, patch)
}

/// A response with its timing / provenance fields zeroed, re-encoded:
/// what "byte-identical modulo volatile fields" means concretely.
fn canonical_bytes(resp: &Response) -> String {
    let mut resp = resp.clone();
    let scrub = |r: &mut reclaim_service::proto::SolveReport| {
        r.solve_ns = 0;
        r.prep_ns = 0;
        r.cached = false;
        r.worker = 0;
    };
    match &mut resp {
        Response::Solve(r) => scrub(r),
        Response::Patch(p) => scrub(&mut p.report),
        other => panic!("trace answers are solves and patches, got {other:?}"),
    }
    ResponseEnvelope {
        version: 1,
        id: 0,
        response: resp,
    }
    .encode()
}

struct StoreDaemon {
    child: std::process::Child,
    socket: PathBuf,
}

impl StoreDaemon {
    fn spawn(tag: &str, store: &Path) -> StoreDaemon {
        let socket =
            std::env::temp_dir().join(format!("reclaimd-crash-{}-{tag}.sock", std::process::id()));
        let _ = fs::remove_file(&socket);
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_reclaimd"))
            .arg("--socket")
            .arg(&socket)
            .arg("--workers")
            .arg("2")
            .arg("--store")
            .arg(store)
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn reclaimd --store");
        StoreDaemon { child, socket }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(
            &reclaim_service::Endpoint::Unix(self.socket.clone()),
            std::time::Duration::from_secs(10),
        )
        .expect("daemon must come up")
    }
}

impl Drop for StoreDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = fs::remove_file(&self.socket);
    }
}

/// The acceptance criterion, end to end: SIGKILL a `--store` daemon
/// mid-way through a 1,000-request mixed solve/patch replay; recovery
/// is deterministic (two runs, `cmp`-equal bytes); a restarted daemon
/// answers the full trace with zero errors, zero prepare passes on
/// solves (every instance re-materializes from disk), `recovered > 0`,
/// and responses byte-identical to the pre-crash run modulo timing.
#[test]
fn kill_nine_mid_replay_then_answer_the_trace_warm() {
    let store_dir = tmpdir("crash");
    let model = EnergyModel::continuous_unbounded();
    let graphs: Vec<TaskGraph> = (0..TRACE_GRAPHS).map(trace_graph).collect();

    // ---- Run A: drive the first 600 requests, then kill -9 with
    // requests still in flight.
    let mut pre_crash: Vec<String> = Vec::new();
    {
        let daemon = StoreDaemon::spawn("a", &store_dir);
        let mut client = daemon.client();
        for r in 0..CRASH_AFTER_ROUNDS {
            let (solve, patch) = trace_round(r, &graphs, &model);
            for req in [solve, patch] {
                let resp = client.roundtrip(req).expect("pre-crash request").response;
                assert!(
                    !matches!(resp, Response::Error(_)),
                    "pre-crash trace must be error-free, round {r}: {resp:?}"
                );
                pre_crash.push(canonical_bytes(&resp));
            }
        }
        // Put traffic in flight and kill mid-stream — no drain, no
        // shutdown handshake.
        let mut pipe = client.pipeline(8);
        for r in CRASH_AFTER_ROUNDS..CRASH_AFTER_ROUNDS + 8 {
            let (solve, _) = trace_round(r, &graphs, &model);
            pipe.send(solve).expect("in-flight send");
        }
        // `Child::kill` is SIGKILL on unix: no drain, no spill_all.
        // (daemon dropped here; Drop delivers the kill + reap)
    }

    // ---- Recovery is a deterministic fixpoint: two recovery runs,
    // byte-identical store (the `cmp` check), nothing lost silently.
    let recovered_entries = {
        let store = Store::open(&store_dir, false).unwrap();
        let s = store.stats();
        assert!(s.recovered > 0, "the store must come back non-empty");
        assert!(
            s.recovered >= TRACE_GRAPHS as u64,
            "every pristine instance was written through long before the kill"
        );
        // All 20 pristine bases survive and load.
        for g in &graphs {
            assert!(
                store.load(content_key(g, &model)).is_some(),
                "pristine instance lost across kill -9"
            );
        }
        s.recovered
    };
    let first = dir_bytes(&store_dir);
    {
        let store = Store::open(&store_dir, false).unwrap();
        let s = store.stats();
        assert_eq!(
            s.corrupt_skipped, 0,
            "run 1 accounted and repaired all damage; run 2 must be clean"
        );
        assert_eq!(s.recovered, recovered_entries);
    }
    assert_eq!(
        dir_bytes(&store_dir),
        first,
        "two recovery runs must produce byte-identical stores"
    );

    // ---- Run B: a fresh daemon on the same store answers the ENTIRE
    // 1,000-request trace — warm.
    let daemon = StoreDaemon::spawn("b", &store_dir);
    let mut client = daemon.client();
    let mut replay: Vec<String> = Vec::new();
    for r in 0..TRACE_ROUNDS {
        let (solve, patch) = trace_round(r, &graphs, &model);
        for (is_solve, req) in [(true, solve), (false, patch)] {
            let resp = client.roundtrip(req).expect("replay request").response;
            match &resp {
                Response::Solve(s) if is_solve => {
                    assert_eq!(
                        s.prep_ns, 0,
                        "round {r}: every solve re-materializes from the store — \
                         a warm restart performs zero prepare passes"
                    );
                    assert!(s.cached, "round {r}: store hits report cached");
                }
                Response::Patch(_) if !is_solve => {}
                other => panic!("round {r}: unexpected response {other:?}"),
            }
            replay.push(canonical_bytes(&resp));
        }
    }
    assert_eq!(
        &replay[..pre_crash.len()],
        &pre_crash[..],
        "replayed responses must be byte-identical to pre-crash responses"
    );

    // The stats ledger agrees: a warm boot, with damage (if any — the
    // kill may have torn the lineage tail) already accounted by the
    // in-process recovery runs above, so this boot saw a clean store.
    let stats = match client.roundtrip(Request::Stats).unwrap().response {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(stats.store.recovered > 0, "daemon booted from the store");
    assert_eq!(
        stats.store.corrupt_skipped, 0,
        "no record may be lost silently — damage was repaired pre-boot"
    );
    assert_eq!(
        stats.cache.misses as usize + stats.cache.hits as usize,
        TRACE_ROUNDS
    );

    // Clean shutdown for good measure (spills, exits 0).
    match client.roundtrip(Request::Shutdown).unwrap().response {
        Response::Shutdown => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    drop(client);
    let _ = fs::remove_dir_all(&store_dir);
}

/// Protocol v5 over the wire, in process: `as_of` rewinds a patched
/// instance to its recorded ancestor, `lineage` reports the chain,
/// and both are cleanly refused without `--store`.
#[test]
fn as_of_and_lineage_over_the_wire() {
    use reclaim_service::daemon::{Daemon, DaemonConfig};
    use reclaim_service::proto::ErrorKind;

    let dir = tmpdir("asof");
    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 1,
        store: Some(dir.clone()),
        ..DaemonConfig::default()
    })
    .unwrap();
    let endpoint = daemon.endpoint();
    let handle = std::thread::spawn(move || daemon.run());
    let mut client =
        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(5)).unwrap();

    let g = sp_graph(77, 12);
    let model = EnergyModel::continuous_unbounded();
    let deadline = 1.5 * taskgraph::analysis::critical_path_weight(&g) + 10.0;
    let base = content_key(&g, &model);
    let solve_of = |graph: TaskGraph| Request::Solve {
        graph,
        model: model.clone(),
        deadline,
    };

    // Seed, patch twice (a 2-hop chain), remember each version's energy.
    let e0 = match client.roundtrip(solve_of(g.clone())).unwrap().response {
        Response::Solve(r) => r.energy,
        other => panic!("expected solve, got {other:?}"),
    };
    let edits1 = vec![GraphEdit::SetWeight {
        task: 1,
        weight: 9.0,
    }];
    let k1 = match client.patch(base, &edits1, deadline).unwrap().response {
        Response::Patch(p) => {
            assert_ne!(p.report.energy, e0);
            p.key
        }
        other => panic!("expected patch, got {other:?}"),
    };
    let edits2 = vec![GraphEdit::SetWeight {
        task: 2,
        weight: 7.5,
    }];
    let (k2, e2) = match client.patch(k1, &edits2, deadline).unwrap().response {
        Response::Patch(p) => (p.key, p.report.energy),
        other => panic!("expected patch, got {other:?}"),
    };

    // The leaf graph, as the client would resend it.
    let (g1, _) = taskgraph::edit::apply_edits(&g, &edits1).unwrap();
    let (g2, _) = taskgraph::edit::apply_edits(&g1, &edits2).unwrap();
    assert_eq!(content_key(&g2, &model), k2);

    // as_of 0 (cleared) answers the present.
    client.set_as_of(Some(0));
    let now = match client.roundtrip(solve_of(g2.clone())).unwrap().response {
        Response::Solve(r) => r.energy,
        other => panic!("expected solve, got {other:?}"),
    };
    assert_eq!(now.to_bits(), e2.to_bits());

    // as_of 2 rewinds the leaf to the pristine root.
    client.set_as_of(Some(2));
    match client.roundtrip(solve_of(g2.clone())).unwrap().response {
        Response::Solve(r) => assert_eq!(
            r.energy.to_bits(),
            e0.to_bits(),
            "as_of 2 must answer the root version"
        ),
        other => panic!("expected solve, got {other:?}"),
    }

    // Deeper than the recorded chain: a structured error, not a guess.
    client.set_as_of(Some(3));
    match client.roundtrip(solve_of(g2.clone())).unwrap().response {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }
    client.set_as_of(None);

    // The lineage query reports the chain, oldest hop first.
    let report = match client.lineage(k2).unwrap().response {
        Response::Lineage(l) => l,
        other => panic!("expected lineage, got {other:?}"),
    };
    assert_eq!(report.depth, 2);
    assert_eq!(report.hops[0].parent, base);
    assert_eq!(report.hops[0].child, k1);
    assert_eq!(report.hops[1].child, k2);
    assert_eq!(report.hops[1].edits, edits2);

    match client.roundtrip(Request::Shutdown).unwrap().response {
        Response::Shutdown => {}
        other => panic!("unexpected: {other:?}"),
    }
    drop(client);
    handle.join().unwrap().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Without `--store`, the v5 surfaces refuse cleanly: `as_of` and
/// `lineage` answer structured bad_request errors, never a crash or a
/// silent present-time answer.
#[test]
fn v5_surfaces_refuse_cleanly_without_a_store() {
    use reclaim_service::daemon::{Daemon, DaemonConfig};
    use reclaim_service::proto::ErrorKind;

    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let endpoint = daemon.endpoint();
    let handle = std::thread::spawn(move || daemon.run());
    let mut client =
        Client::connect_with_retry(&endpoint, std::time::Duration::from_secs(5)).unwrap();

    let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
    let model = EnergyModel::continuous_unbounded();
    client.set_as_of(Some(1));
    let req = Request::Solve {
        graph: g.clone(),
        model: model.clone(),
        deadline: 9.0,
    };
    match client.roundtrip(req).unwrap().response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert!(e.message.contains("--store"), "{}", e.message);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    client.set_as_of(None);

    match client.lineage(content_key(&g, &model)).unwrap().response {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }

    // The stats block reports zeros, and the daemon keeps serving.
    match client.roundtrip(Request::Stats).unwrap().response {
        Response::Stats(s) => assert_eq!(s.store, Default::default()),
        other => panic!("expected stats, got {other:?}"),
    }

    match client.roundtrip(Request::Shutdown).unwrap().response {
        Response::Shutdown => {}
        other => panic!("unexpected: {other:?}"),
    }
    drop(client);
    handle.join().unwrap().unwrap();
}
