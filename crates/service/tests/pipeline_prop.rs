//! Property tests for the pipelined client and the per-connection
//! frame buffer: a scripted in-process peer answers a window of
//! requests in an arbitrary shuffled order and the client must
//! reassociate every response by `id` (surfacing an unknown id as a
//! structured protocol error), and frames split or coalesced across
//! arbitrary read-chunk boundaries must reassemble exactly.

use proptest::prelude::*;
use reclaim_service::client::{Client, ClientError};
use reclaim_service::proto::{
    read_frame, write_frame, ErrorKind, FrameBuffer, Request, RequestEnvelope, Response,
    ResponseEnvelope,
};
use std::os::unix::net::UnixStream;

/// Answer `n` requests read off `peer` in the given shuffled order,
/// tagging each response body with the request id it answers (so the
/// test can check content, not just envelope ids).
fn scripted_peer(mut peer: UnixStream, n: usize, order: Vec<usize>) {
    let mut envs = Vec::with_capacity(n);
    for _ in 0..n {
        let payload = read_frame(&mut peer).unwrap().expect("peer closed early");
        envs.push(RequestEnvelope::decode(&payload).unwrap());
    }
    for k in order {
        let env = &envs[k];
        let resp = ResponseEnvelope {
            version: env.version,
            id: env.id,
            response: Response::Curve(vec![(env.id as f64, 1.0)]),
        };
        write_frame(&mut peer, &resp.encode()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffled responses are reassociated: every request gets the
    /// response carrying its id, in the peer's completion order.
    #[test]
    fn pipeline_matches_shuffled_responses_by_id(
        n in 1usize..12,
        shuffle_seed in any::<u64>(),
    ) {
        // Seeded Fisher–Yates: every permutation of the n responses is
        // reachable across cases.
        let mut order: Vec<usize> = (0..n).collect();
        let mut xs = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            order.swap(i, (xs as usize) % (i + 1));
        }
        let (ours, theirs) = UnixStream::pair().unwrap();
        let peer_order = order.clone();
        let peer = std::thread::spawn(move || scripted_peer(theirs, n, peer_order));

        let mut client = Client::from_unix(ours);
        let mut pipe = client.pipeline(n);
        let mut sent = Vec::new();
        for _ in 0..n {
            sent.push(pipe.send(Request::Stats).unwrap());
        }
        let responses = pipe.drain().unwrap();
        peer.join().unwrap();

        prop_assert_eq!(responses.len(), n);
        // Arrival order is the peer's completion order...
        let got: Vec<u64> = responses.iter().map(|r| r.id).collect();
        let expected: Vec<u64> = order.iter().map(|&k| sent[k]).collect();
        prop_assert_eq!(got, expected);
        // ...and every body is the one minted for that id.
        for r in &responses {
            match &r.response {
                Response::Curve(points) => prop_assert_eq!(points[0].0, r.id as f64),
                other => panic!("unexpected body {other:?}"),
            }
        }
    }

    /// A response whose id was never sent is a structured protocol
    /// error, not a hang or a misdelivery.
    #[test]
    fn unknown_response_id_is_a_structured_error(n in 1usize..8, bogus in 1000u64..2000) {
        let (ours, theirs) = UnixStream::pair().unwrap();
        let peer = std::thread::spawn(move || {
            let mut peer = theirs;
            let mut envs = Vec::new();
            for _ in 0..n {
                let payload = read_frame(&mut peer).unwrap().expect("peer closed early");
                envs.push(RequestEnvelope::decode(&payload).unwrap());
            }
            // Answer an id nobody asked for.
            let resp = ResponseEnvelope {
                version: envs[0].version,
                id: bogus,
                response: Response::Shutdown,
            };
            write_frame(&mut peer, &resp.encode()).unwrap();
        });

        let mut client = Client::from_unix(ours);
        let mut pipe = client.pipeline(n);
        for _ in 0..n {
            pipe.send(Request::Stats).unwrap();
        }
        match pipe.drain() {
            Err(ClientError::Protocol(e)) => {
                prop_assert_eq!(e.kind, ErrorKind::Protocol);
                prop_assert!(e.message.contains("matches no pending request"));
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        peer.join().unwrap();
    }

    /// Frames pushed through the per-connection buffer in arbitrary
    /// chunk sizes (splitting headers, bodies, and terminators at
    /// every boundary, and coalescing adjacent frames) reassemble to
    /// exactly the payload sequence that was framed.
    #[test]
    fn frame_buffer_survives_arbitrary_chunking(
        payloads in prop::collection::vec("[ -~]{0,60}", 0..8),
        chunk_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut buf = FrameBuffer::new();
        let mut out = Vec::new();
        let mut xs = chunk_seed | 1;
        let mut i = 0;
        while i < wire.len() {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            let end = (i + 1 + (xs as usize) % 7).min(wire.len());
            buf.push(&wire[i..end]);
            while let Some(p) = buf.next_frame().unwrap() {
                out.push(p);
            }
            i = end;
        }
        prop_assert_eq!(out, payloads);
        prop_assert!(buf.is_empty(), "no residual bytes after the last frame");
    }
}
