//! Integration tests against a real `reclaimd` process: spawn the
//! binary on a temp Unix socket, drive it over the wire, and assert
//! the acceptance behaviors — repeated solves hit the cache (hit
//! counter increments, `prep_ns` drops to 0), a tiny budget evicts,
//! and `shutdown` exits cleanly and removes the socket.

use models::EnergyModel;
use reclaim_service::client::Client;
use reclaim_service::daemon::{Daemon, DaemonConfig, Endpoint};
use reclaim_service::proto::{ErrorKind, Request, Response, SolveReport, StatsReport};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::Duration;
use taskgraph::{generators, TaskGraph};

struct Spawned {
    child: Child,
    endpoint: Endpoint,
    socket: PathBuf,
}

impl Spawned {
    /// Spawn `reclaimd` on a fresh temp socket with extra flags.
    fn new(tag: &str, extra: &[&str]) -> Spawned {
        let socket =
            std::env::temp_dir().join(format!("reclaimd-test-{}-{tag}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_reclaimd"))
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn reclaimd");
        Spawned {
            child,
            endpoint: Endpoint::Unix(socket.clone()),
            socket,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.endpoint, Duration::from_secs(10))
            .expect("daemon must come up")
    }

    /// Ask for shutdown, close the connection, and assert a clean
    /// exit (the daemon drains open connections before exiting, so
    /// the client must be dropped before waiting).
    fn shutdown(mut self, mut client: Client) {
        match client.roundtrip(Request::Shutdown).unwrap().response {
            Response::Shutdown => {}
            other => panic!("unexpected shutdown response: {other:?}"),
        }
        drop(client);
        let status = self.child.wait().expect("wait for reclaimd");
        assert!(status.success(), "daemon must exit cleanly: {status:?}");
        assert!(
            !self.socket.exists(),
            "socket file must be removed on shutdown"
        );
    }
}

impl Drop for Spawned {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn big_graph(seed: u64) -> TaskGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_sp(120, 0.55, 1.0, 5.0, &mut rng).0
}

fn solve_req(g: &TaskGraph) -> Request {
    Request::Solve {
        graph: g.clone(),
        model: EnergyModel::continuous_unbounded(),
        deadline: 1.5 * taskgraph::analysis::critical_path_weight(g),
    }
}

fn expect_solve(resp: Response) -> SolveReport {
    match resp {
        Response::Solve(r) => r,
        other => panic!("expected a solve report, got {other:?}"),
    }
}

fn expect_stats(resp: Response) -> StatsReport {
    match resp {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// The v2 patch path, end to end over the wire: cache an instance,
/// mutate it in place by content key, chain a second patch off the
/// returned key, and check the stats ledger kept patch traffic apart
/// from plain hits.
#[test]
fn patch_edits_cached_instance_in_place() {
    use reclaim_service::proto::PatchReport;
    use taskgraph::edit::GraphEdit;

    let daemon = Spawned::new("patch", &["--workers", "2"]);
    let mut client = daemon.client();
    // Modest size: the structural patch below forces a cold LP, and
    // this is a debug-build test.
    let g = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        generators::random_sp(36, 0.55, 1.0, 5.0, &mut rng).0
    };
    let model = EnergyModel::VddHopping(models::DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap());
    let deadline = 1.5 * taskgraph::analysis::critical_path_weight(&g);

    let expect_patch = |resp: Response| -> PatchReport {
        match resp {
            Response::Patch(p) => p,
            other => panic!("expected a patch report, got {other:?}"),
        }
    };

    // Patching an unknown base is a structured unknown_base error.
    let missing = client.patch(42, &[], deadline).unwrap().response;
    match missing {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownBase),
        other => panic!("expected unknown_base, got {other:?}"),
    }

    // Seed the cache, then patch a weight.
    let seeded = expect_solve(
        client
            .roundtrip(Request::Solve {
                graph: g.clone(),
                model: model.clone(),
                deadline,
            })
            .unwrap()
            .response,
    );
    assert!(!seeded.cached);
    let base = reclaim_core::engine::content_key(&g, &model);
    let edits = [GraphEdit::SetWeight {
        task: 7,
        weight: 3.25,
    }];
    let p1 = expect_patch(client.patch(base, &edits, deadline).unwrap().response);
    assert!(p1.report.cached, "the base came from the cache");
    assert_eq!(p1.report.prep_ns, 0, "weight edits re-prepare nothing");
    assert!(p1.warm_lp, "weight-only Vdd patch must reuse the LP basis");
    // The returned key matches an independent rehash of the edited
    // graph, and the patched result matches a cold solve of it.
    let (edited, _) = taskgraph::edit::apply_edits(&g, &edits).unwrap();
    assert_eq!(p1.key, reclaim_core::engine::content_key(&edited, &model));
    let cold = expect_solve(
        client
            .roundtrip(Request::Solve {
                graph: edited.clone(),
                model: model.clone(),
                deadline,
            })
            .unwrap()
            .response,
    );
    assert!(
        cold.cached,
        "patched entry is addressable under its new key"
    );
    assert!(
        (p1.report.energy - cold.energy).abs() <= 1e-6 * (1.0 + cold.energy),
        "patched {} vs direct {}",
        p1.report.energy,
        cold.energy
    );

    // Chain a structural edit off the returned key: prep is measured
    // (caches re-warmed), the LP goes cold again.
    let p2 = expect_patch(
        client
            .patch(
                p1.key,
                &[GraphEdit::RemoveTask {
                    task: edited.n() - 1,
                }],
                deadline,
            )
            .unwrap()
            .response,
    );
    assert!(!p2.warm_lp, "structural edit spends the warm basis");
    assert_ne!(p2.key, p1.key);

    // The old base key was re-keyed away: patching it again misses.
    match client.patch(base, &edits, deadline).unwrap().response {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownBase),
        other => panic!("expected unknown_base after re-key, got {other:?}"),
    }

    let stats = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    assert_eq!(stats.cache.patch_hits, 2);
    assert_eq!(stats.cache.patch_misses, 2);
    assert_eq!(stats.cache.rekeys, 2);
    // Patch traffic stayed out of the plain hit/miss ledger: one hit
    // (the direct re-solve of the edited graph), one miss (the seed
    // solve) — the unknown-base patches never touched it.
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    daemon.shutdown(client);
}

/// The acceptance path: a repeated solve of the same instance skips
/// preparation — the hit counter increments and the second report's
/// solve_ns excludes preparation (prep_ns == 0).
#[test]
fn repeated_solve_hits_cache_and_skips_preparation() {
    let daemon = Spawned::new("hit", &["--workers", "2"]);
    let mut client = daemon.client();
    let g = big_graph(1);

    let first = expect_solve(client.roundtrip(solve_req(&g)).unwrap().response);
    assert!(!first.cached, "first sight of this content is a miss");
    assert!(first.prep_ns > 0, "the miss pays for preparation");

    let hits_before = expect_stats(client.roundtrip(Request::Stats).unwrap().response)
        .cache
        .hits;

    let second = expect_solve(client.roundtrip(solve_req(&g)).unwrap().response);
    assert!(second.cached, "identical content must hit");
    assert_eq!(second.prep_ns, 0, "a hit pays nothing for preparation");
    assert!(
        (second.energy - first.energy).abs() <= 1e-9 * (1.0 + first.energy),
        "cached preparation must not change the answer"
    );

    let stats = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    assert!(
        stats.cache.hits > hits_before,
        "cache-hit counter must increment ({} -> {})",
        hits_before,
        stats.cache.hits
    );
    assert_eq!(stats.cache.entries, 1);
    // Both worker slots are reported, and the pool did all the work.
    assert_eq!(stats.workers.len(), 2);
    assert!(stats.workers.iter().map(|w| w.solves).sum::<u64>() >= 2);

    daemon.shutdown(client);
}

/// Under a one-entry budget, a second distinct instance evicts the
/// first (and the evictee misses when it returns).
#[test]
fn tiny_budget_evicts_lru() {
    let daemon = Spawned::new("evict", &["--cache-entries", "1"]);
    let mut client = daemon.client();
    let (a, b) = (big_graph(10), big_graph(11));

    expect_solve(client.roundtrip(solve_req(&a)).unwrap().response);
    expect_solve(client.roundtrip(solve_req(&b)).unwrap().response);
    let stats = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    assert_eq!(stats.cache.entries, 1, "budget holds");
    assert!(stats.cache.evictions >= 1, "a must have been evicted");

    let again = expect_solve(client.roundtrip(solve_req(&a)).unwrap().response);
    assert!(!again.cached, "evicted content must miss");

    daemon.shutdown(client);
}

/// The multi-solve request types work over the wire, and errors come
/// back structured.
#[test]
fn sweep_batch_and_structured_errors() {
    let daemon = Spawned::new("multi", &[]);
    let mut client = daemon.client();
    let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
    let model = EnergyModel::continuous(2.0);

    // solve_deadlines: first feasible entry pays prep once.
    let resp = client
        .roundtrip(Request::SolveDeadlines {
            graph: g.clone(),
            model: model.clone(),
            deadlines: vec![0.1, 5.0, 8.0],
        })
        .unwrap()
        .response;
    let Response::Deadlines(items) = resp else {
        panic!("expected deadlines response");
    };
    assert_eq!(items.len(), 3);
    let e = items[0].as_ref().unwrap_err();
    assert_eq!(e.kind, ErrorKind::Infeasible, "0.1 is below dmin");
    assert!(e.deadline.is_some() && e.min_makespan.is_some());
    let (r1, r2) = (items[1].as_ref().unwrap(), items[2].as_ref().unwrap());
    assert!(r1.energy > r2.energy, "looser deadline, lower energy");

    // energy_curve over the same (already cached) instance.
    let resp = client
        .roundtrip(Request::EnergyCurve {
            graph: g.clone(),
            model: model.clone(),
            points: 6,
            lo: 1.1,
            hi: 3.0,
            exact: false,
        })
        .unwrap()
        .response;
    let Response::Curve(points) = resp else {
        panic!("expected curve response");
    };
    assert_eq!(points.len(), 6);
    assert!(points.windows(2).all(|w| w[1].1 <= w[0].1 * (1.0 + 1e-9)));

    // batch under one model.
    let resp = client
        .roundtrip(Request::Batch {
            model,
            jobs: vec![(g.clone(), 5.0), (g.clone(), 0.01), (g, 9.0)],
        })
        .unwrap()
        .response;
    let Response::Batch(items) = resp else {
        panic!("expected batch response");
    };
    assert_eq!(items.len(), 3);
    assert!(items[0].is_ok() && items[2].is_ok());
    assert_eq!(items[1].as_ref().unwrap_err().kind, ErrorKind::Infeasible);

    daemon.shutdown(client);
}

/// The v3 exact energy_curve path, end to end: closed-form segments
/// that agree with the sampled curve pointwise, a retained ray that
/// answers the repeat request as `cached_curve`, and a patch that
/// invalidates it (the weights changed, so the old curve is wrong).
#[test]
fn exact_curve_over_the_wire_with_retained_ray() {
    use models::DiscreteModes;
    use reclaim_core::engine::content_key;
    use reclaim_service::proto::CurveExactReport;
    use taskgraph::edit::GraphEdit;

    let daemon = Spawned::new("exactcurve", &[]);
    let mut client = daemon.client();
    let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
    let modes = DiscreteModes::new(&[0.8, 1.6, 2.4]).unwrap();
    let model = EnergyModel::VddHopping(modes);
    let (lo, hi) = (1.05, 3.0);
    let curve_req = |exact: bool| Request::EnergyCurve {
        graph: g.clone(),
        model: model.clone(),
        points: 8,
        lo,
        hi,
        exact,
    };
    let expect_exact = |resp: Response| -> CurveExactReport {
        match resp {
            Response::CurveExact(c) => c,
            other => panic!("expected an exact curve, got {other:?}"),
        }
    };

    let first = expect_exact(client.roundtrip(curve_req(true)).unwrap().response);
    assert!(first.exact, "Vdd curves are exact closed forms");
    assert!(!first.cached_curve, "first request computes");
    assert!(!first.segments.is_empty());
    for w in first.segments.windows(2) {
        assert!(
            (w[0].deadline_hi - w[1].deadline_lo).abs() <= 1e-9 * (1.0 + w[0].deadline_hi),
            "segments must be contiguous"
        );
    }

    // The sampled curve (same instance, same range) agrees pointwise.
    let resp = client.roundtrip(curve_req(false)).unwrap().response;
    let Response::Curve(points) = resp else {
        panic!("expected a sampled curve");
    };
    let curve = reclaim_core::ExactCurve {
        segments: first.segments.clone(),
        exact: first.exact,
        stats: Default::default(),
    };
    for &(d, e) in &points {
        let exact = curve.energy_at(d).expect("sampled point inside range");
        assert!(
            (exact - e).abs() <= 1e-6 * (1.0 + e),
            "exact {exact} vs sampled {e} at D = {d}"
        );
    }

    // Repeat request: served from the retained ray.
    let again = expect_exact(client.roundtrip(curve_req(true)).unwrap().response);
    assert!(again.cached_curve, "repeat must be served from the slot");
    assert_eq!(again.segments, first.segments);

    // A weight patch re-keys the entry; the retained curve must not
    // survive onto the patched instance.
    let base = content_key(&g, &model);
    let resp = client
        .patch(
            base,
            &[GraphEdit::SetWeight {
                task: 1,
                weight: 4.0,
            }],
            6.0,
        )
        .unwrap()
        .response;
    let Response::Patch(_) = resp else {
        panic!("expected a patch response, got {resp:?}");
    };
    let (g2, _) = taskgraph::edit::apply_edits(
        &g,
        &[GraphEdit::SetWeight {
            task: 1,
            weight: 4.0,
        }],
    )
    .unwrap();
    let fresh = expect_exact(
        client
            .roundtrip(Request::EnergyCurve {
                graph: g2,
                model: model.clone(),
                points: 8,
                lo,
                hi,
                exact: true,
            })
            .unwrap()
            .response,
    );
    assert!(
        !fresh.cached_curve,
        "patched instance must recompute its curve"
    );

    daemon.shutdown(client);
}

/// Malformed envelopes are answered (not dropped) with protocol /
/// bad-request errors, and the daemon keeps serving afterwards.
#[test]
fn malformed_requests_get_structured_answers() {
    use reclaim_service::proto::{read_frame, write_frame, ResponseEnvelope};
    let daemon = Spawned::new("malformed", &[]);
    let mut client = daemon.client();

    // An unknown version, sent raw over a second connection.
    {
        let mut raw = std::os::unix::net::UnixStream::connect(&daemon.socket).unwrap();
        write_frame(&mut raw, r#"{"v":99,"id":5,"type":"stats"}"#).unwrap();
        let payload = read_frame(&mut raw).unwrap().expect("an answer");
        let resp = ResponseEnvelope::decode(&payload).unwrap();
        let Response::Error(e) = resp.response else {
            panic!("expected an error response");
        };
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("version"), "{}", e.message);
    }

    // The daemon still answers well-formed requests.
    let stats = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    assert_eq!(stats.cache.entries, 0);

    daemon.shutdown(client);
}

/// The in-process TCP path: bind on an ephemeral port, solve, stop.
#[test]
fn tcp_endpoint_works_in_process() {
    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let endpoint = daemon.endpoint();
    assert!(matches!(endpoint, Endpoint::Tcp(_)));
    let handle = std::thread::spawn(move || daemon.run());

    let mut client = Client::connect_with_retry(&endpoint, Duration::from_secs(5)).unwrap();
    let g = generators::chain(&[1.0, 2.0]);
    let r = expect_solve(client.roundtrip(solve_req(&g)).unwrap().response);
    assert!(r.energy > 0.0);
    match client.roundtrip(Request::Shutdown).unwrap().response {
        Response::Shutdown => {}
        other => panic!("unexpected: {other:?}"),
    }
    drop(client);
    handle.join().unwrap().unwrap();
}

/// Exact branch-and-bound through the daemon: a lone request on a
/// 4-worker pool borrows the idle slots and runs the parallel
/// partition sweep (`discrete-bnb-par`), and every worker's
/// branch-and-bound counters are flushed before the response frame —
/// so a `stats` issued right after a solve's answer already accounts
/// for that solve, exactly once.
#[test]
fn parallel_bnb_borrows_spare_workers_and_flushes_counters() {
    let daemon = Spawned::new("parbnb", &["--workers", "4"]);
    let mut client = daemon.client();

    let g = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        generators::random_sp(12, 0.55, 1.0, 4.0, &mut rng).0
    };
    let modes = models::DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    let cp = taskgraph::analysis::critical_path_weight(&g);
    let req = Request::Solve {
        graph: g.clone(),
        model: EnergyModel::Discrete(modes),
        deadline: 1.15 * cp / 2.0,
    };

    // Request 1: the solve. One client means the other three workers
    // are idle, so the serving worker boosts to threads = 4 and the
    // provenance tag records the parallel path.
    let r = expect_solve(client.roundtrip(req.clone()).unwrap().response);
    assert_eq!(r.algorithm, "discrete-bnb-par", "spare slots not borrowed");

    // Request 2: stats. The solve's response preceded this request,
    // so its node total must already be in the ledger.
    let s1 = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    let nodes1: u64 = s1.workers.iter().map(|w| w.bnb_nodes).sum();
    assert!(nodes1 > 0, "bnb nodes not flushed before the response");
    assert_eq!(
        s1.workers.iter().map(|w| w.bnb_cancelled).sum::<u64>(),
        0,
        "no racing configured, nothing may be cancelled"
    );

    // Requests 3 and 4: a second identical solve must add its own
    // node count once — the ledger grows, it never double-drains.
    let _ = expect_solve(client.roundtrip(req).unwrap().response);
    let s2 = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    let nodes2: u64 = s2.workers.iter().map(|w| w.bnb_nodes).sum();
    assert_eq!(nodes2, 2 * nodes1, "deterministic sweep: same count again");
    // Only the two solves reach the pool: `stats` is answered inline
    // by the poll loop and must never consume a worker slot.
    assert_eq!(
        s2.workers.iter().map(|w| w.requests).sum::<u64>(),
        2,
        "each pool request counted exactly once, stats served inline"
    );

    daemon.shutdown(client);
}

/// Satellite: a connection held open and idle across `shutdown` must
/// not stall the exit. The old thread-per-connection daemon parked a
/// blocking reader on the idle socket until the peer closed; the poll
/// loop owns every socket and closes them all at drain.
#[test]
fn shutdown_closes_idle_connections_within_a_bound() {
    let mut daemon = Spawned::new("drain", &["--workers", "2"]);
    // Connects and never sends a byte.
    let idle = daemon.client();
    let mut driver = daemon.client();
    expect_solve(
        driver
            .roundtrip(solve_req(&big_graph(77)))
            .unwrap()
            .response,
    );
    match driver.roundtrip(Request::Shutdown).unwrap().response {
        Response::Shutdown => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    drop(driver);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon did not exit while an idle connection was held open"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "daemon must exit cleanly: {status:?}");
    assert!(!daemon.socket.exists(), "socket removed at drain start");
    drop(idle);
}

/// Satellite: `stats` is answered inline by the poll loop, never
/// consuming a worker slot — so it returns while the lone worker is
/// deep in a long batch, and the net gauges prove the overlap.
#[test]
fn stats_answers_inline_while_the_lone_worker_is_busy() {
    let daemon = Spawned::new("inline-stats", &["--workers", "1"]);
    let mut busy = daemon.client();
    let mut prober = daemon.client();

    // Every graph is unique, so each entry pays preparation + solve:
    // the single worker is busy for a while.
    let jobs: Vec<(TaskGraph, f64)> = (0..200)
        .map(|i| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(1000 + i);
            let g = generators::random_sp(50, 0.55, 1.0, 5.0, &mut rng).0;
            let d = 1.5 * taskgraph::analysis::critical_path_weight(&g);
            (g, d)
        })
        .collect();
    let batch = Request::Batch {
        model: EnergyModel::continuous_unbounded(),
        jobs,
    };

    // Send without collecting the response, then probe from a second
    // connection while the batch occupies the worker.
    let mut pipe = busy.pipeline(2);
    pipe.send(batch).unwrap();
    let stats = expect_stats(prober.roundtrip(Request::Stats).unwrap().response);
    assert!(
        stats.net.inflight >= 1,
        "stats answered after the batch finished — not inline: {:?}",
        stats.net
    );
    assert_eq!(stats.net.connections, 2, "both connections registered");

    let responses = pipe.drain().unwrap();
    assert_eq!(responses.len(), 1);
    match &responses[0].response {
        Response::Batch(items) => assert_eq!(items.len(), 200),
        other => panic!("expected a batch response, got {other:?}"),
    }
    drop(busy);
    daemon.shutdown(prober);
}

/// The v4 `corpus` request end to end: the daemon's cache-backed
/// sharded loop produces byte-identical manifests to the local
/// runner, and a zero `timeout_ms` budget comes back as the
/// structured `timeout` error (counted in the net stats).
#[test]
fn corpus_over_the_wire_matches_local_and_timeouts_are_structured() {
    use models::PowerLaw;
    use reclaim_service::corpus::{run_corpus, CorpusJob};

    let daemon = Spawned::new("corpus-v4", &["--workers", "2"]);
    let mut client = daemon.client();

    let jobs: Vec<CorpusJob> = (0..6)
        .map(|i| CorpusJob {
            name: format!("inst_{i}.inst"),
            graph: generators::chain(&[1.0 + i as f64, 2.0, 0.5]),
            model: EnergyModel::continuous_unbounded(),
            deadline: 8.0,
        })
        .collect();
    let local = run_corpus(jobs.clone(), 3, PowerLaw::CUBIC);

    let reply = client
        .roundtrip(Request::Corpus {
            shards: 3,
            jobs: jobs.clone(),
        })
        .unwrap();
    assert_eq!(reply.version, 4, "corpus needs protocol v4");
    let remote = match reply.response {
        Response::Corpus(shards) => shards,
        other => panic!("expected corpus shards, got {other:?}"),
    };
    assert_eq!(remote.len(), 3);
    for (r, l) in remote.iter().zip(local.iter()) {
        assert_eq!(
            r.manifest_json(),
            l.manifest_json(),
            "daemon corpus must reproduce the local manifest byte-for-byte"
        );
    }

    // A queue-wait budget of zero always expires before the worker
    // picks the job up: structured timeout, solve skipped.
    client.set_timeout_ms(Some(0));
    match client.roundtrip(solve_req(&big_graph(5))).unwrap().response {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Timeout),
        other => panic!("expected a timeout error, got {other:?}"),
    }
    client.set_timeout_ms(None);
    let stats = expect_stats(client.roundtrip(Request::Stats).unwrap().response);
    assert_eq!(stats.net.timeouts, 1, "the timeout is counted");
    daemon.shutdown(client);
}
