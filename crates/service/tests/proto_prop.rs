//! Property tests for the wire protocol: encode→decode identity over
//! randomized envelopes (patch edits included), truncated-frame
//! rejection at every cut point, and unknown-version rejection for
//! every version outside the supported range.

use models::{DiscreteModes, EnergyModel, IncrementalModes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_service::proto::{
    read_frame, write_frame, ErrorBody, ErrorKind, FrameError, PatchReport, Request,
    RequestEnvelope, Response, ResponseEnvelope, SolveReport, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use taskgraph::edit::GraphEdit;
use taskgraph::{generators, TaskGraph};

fn arb_model() -> impl Strategy<Value = EnergyModel> {
    prop_oneof![
        Just(EnergyModel::continuous_unbounded()),
        (0.5f64..4.0).prop_map(EnergyModel::continuous),
        prop::collection::vec(0.25f64..4.0, 1..6)
            .prop_map(|v| EnergyModel::Discrete(DiscreteModes::new(&v).unwrap())),
        prop::collection::vec(0.25f64..4.0, 1..6)
            .prop_map(|v| EnergyModel::VddHopping(DiscreteModes::new(&v).unwrap())),
        (0.25f64..1.0, 1.5f64..4.0, 0.05f64..0.75).prop_map(|(lo, hi, d)| {
            EnergyModel::Incremental(IncrementalModes::new(lo, hi, d).unwrap())
        }),
    ]
}

fn graph_for(seed: u64, n: usize) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_dag(n.max(1), 0.3, 0.5, 5.0, &mut rng)
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), 1usize..12, arb_model(), 0.5f64..50.0).prop_map(|(s, n, model, d)| {
            Request::Solve {
                graph: graph_for(s, n),
                model,
                deadline: d,
            }
        }),
        (
            any::<u64>(),
            1usize..10,
            arb_model(),
            prop::collection::vec(0.5f64..50.0, 1..6)
        )
            .prop_map(|(s, n, model, deadlines)| Request::SolveDeadlines {
                graph: graph_for(s, n),
                model,
                deadlines,
            }),
        (any::<u64>(), 1usize..10, arb_model(), 2usize..9).prop_map(|(s, n, model, points)| {
            Request::EnergyCurve {
                graph: graph_for(s, n),
                model,
                points,
                lo: 1.05,
                hi: 4.0,
                exact: points % 2 == 0,
            }
        }),
        (
            any::<u64>(),
            arb_model(),
            prop::collection::vec(0.5f64..20.0, 1..4)
        )
            .prop_map(|(s, model, ds)| Request::Batch {
                model,
                jobs: ds
                    .into_iter()
                    .enumerate()
                    .map(|(i, d)| (graph_for(s.wrapping_add(i as u64), 3 + i), d))
                    .collect(),
            }),
        (
            any::<u64>(),
            prop::collection::vec(arb_edit(), 0..5),
            0.5f64..50.0
        )
            .prop_map(|(base_lo, edits, deadline)| Request::Patch {
                // Spread bits into both halves so the hex round trip
                // is exercised across the full 128-bit width.
                base: (base_lo as u128) | ((base_lo.rotate_left(17) as u128) << 64),
                edits,
                deadline,
            }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn arb_edit() -> impl Strategy<Value = GraphEdit> {
    prop_oneof![
        (0usize..20, 0.1f64..50.0).prop_map(|(task, weight)| GraphEdit::SetWeight { task, weight }),
        (0usize..20, 0usize..20).prop_map(|(from, to)| GraphEdit::InsertEdge { from, to }),
        (0usize..20, 0usize..20).prop_map(|(from, to)| GraphEdit::RemoveEdge { from, to }),
        (
            0.1f64..50.0,
            prop::collection::vec(0usize..20, 0..3),
            prop::collection::vec(0usize..20, 0..3)
        )
            .prop_map(|(weight, preds, succs)| GraphEdit::AddTask {
                weight,
                preds,
                succs
            }),
        (0usize..20).prop_map(|task| GraphEdit::RemoveTask { task }),
    ]
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), (0.1f64..100.0).prop_map(Some),]
}

fn arb_error() -> impl Strategy<Value = ErrorBody> {
    (
        prop_oneof![
            Just(ErrorKind::Infeasible),
            Just(ErrorKind::Numerical),
            Just(ErrorKind::Unsupported),
            Just(ErrorKind::BudgetExhausted),
            Just(ErrorKind::BadRequest),
            Just(ErrorKind::UnknownBase),
            Just(ErrorKind::Protocol),
            Just(ErrorKind::Timeout),
        ],
        "[ -~]{0,40}",
        arb_opt_f64(),
        arb_opt_f64(),
    )
        .prop_map(|(kind, message, deadline, min_makespan)| ErrorBody {
            kind,
            message,
            deadline,
            min_makespan,
        })
}

fn arb_report() -> impl Strategy<Value = SolveReport> {
    (
        (0.001f64..1e6, "[a-z-]{1,16}", 0.001f64..1e4),
        (any::<u32>(), any::<u32>(), any::<bool>(), 0u64..32),
    )
        .prop_map(
            |((energy, algorithm, makespan), (solve_ns, prep_ns, cached, worker))| SolveReport {
                energy,
                algorithm,
                makespan,
                solve_ns: solve_ns as u64,
                prep_ns: prep_ns as u64,
                cached,
                worker,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    let item = prop_oneof![
        arb_report().prop_map(Ok),
        arb_error().prop_map(Err::<SolveReport, _>),
    ];
    prop_oneof![
        arb_report().prop_map(Response::Solve),
        prop::collection::vec(item, 0..5).prop_map(Response::Deadlines),
        prop::collection::vec((0.5f64..50.0, 0.001f64..1e6), 0..6).prop_map(Response::Curve),
        (arb_report(), any::<u64>(), any::<bool>()).prop_map(|(report, key, warm_lp)| {
            Response::Patch(PatchReport {
                report,
                key: (key as u128) | ((key.rotate_left(29) as u128) << 64),
                warm_lp,
            })
        }),
        Just(Response::Shutdown),
        arb_error().prop_map(Response::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity on request envelopes (at the
    /// version the bundled client would pick for the request).
    #[test]
    fn request_roundtrip(id in any::<u32>(), request in arb_request()) {
        let env = RequestEnvelope::new(id as u64, request);
        let back = RequestEnvelope::decode(&env.encode()).expect("own encoding must decode");
        prop_assert_eq!(back, env);
    }

    /// encode → decode is the identity on response envelopes, at every
    /// version the build speaks.
    #[test]
    fn response_roundtrip(
        id in any::<u32>(),
        v in MIN_PROTOCOL_VERSION..PROTOCOL_VERSION + 1,
        response in arb_response(),
    ) {
        let env = ResponseEnvelope { version: v, id: id as u64, response };
        let back = ResponseEnvelope::decode(&env.encode()).expect("own encoding must decode");
        prop_assert_eq!(back, env);
    }

    /// A frame cut anywhere strictly inside is rejected as truncated,
    /// and a cut at the boundary reads back the full payload.
    #[test]
    fn truncated_frames_rejected(request in arb_request(), cut_seed in any::<u64>()) {
        let payload = RequestEnvelope::new(1, request).encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = 1 + (cut_seed as usize) % (buf.len() - 1);
        let mut r = &buf[..cut];
        prop_assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated(_))));
        let mut full = &buf[..];
        prop_assert_eq!(read_frame(&mut full).unwrap().as_deref(), Some(payload.as_str()));
    }

    /// Every version outside the supported range is rejected as a
    /// protocol error, and everything inside it is accepted.
    #[test]
    fn unknown_versions_rejected(v in any::<u32>()) {
        let payload = format!("{{\"v\":{v},\"id\":1,\"type\":\"stats\"}}");
        let supported = (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&(v as u64));
        match RequestEnvelope::decode(&payload) {
            Ok(env) => {
                prop_assert!(supported);
                prop_assert_eq!(env.version, v as u64);
            }
            Err(e) => {
                prop_assert!(!supported);
                prop_assert_eq!(e.kind, ErrorKind::Protocol);
            }
        }
    }

    /// Arbitrary non-JSON payloads decode to protocol errors, never
    /// panics.
    #[test]
    fn garbage_payloads_never_panic(junk in "[ -~]{0,120}") {
        if let Err(e) = RequestEnvelope::decode(&junk) {
            prop_assert!(matches!(e.kind, ErrorKind::Protocol | ErrorKind::BadRequest));
        }
    }
}
