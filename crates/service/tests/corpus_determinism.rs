//! The Bobpp-style determinism contract of the sharded corpus
//! front-end: two runs over the same job stream — even differently
//! ordered — produce byte-identical shard manifests.

use models::{DiscreteModes, EnergyModel, IncrementalModes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_service::corpus::{run_corpus, write_outputs, CorpusJob};
use std::path::PathBuf;
use taskgraph::generators;

fn corpus_jobs() -> Vec<CorpusJob> {
    let mut rng = StdRng::seed_from_u64(99);
    let models: Vec<EnergyModel> = vec![
        EnergyModel::continuous_unbounded(),
        EnergyModel::continuous(2.5),
        EnergyModel::Discrete(DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap()),
        EnergyModel::VddHopping(DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap()),
        EnergyModel::Incremental(IncrementalModes::new(0.5, 2.5, 0.25).unwrap()),
    ];
    (0..10)
        .map(|i| {
            let g = match i % 3 {
                0 => generators::random_sp(20 + i, 0.5, 1.0, 4.0, &mut rng).0,
                1 => generators::chain(&generators::random_weights(15, 1.0, 4.0, &mut rng)),
                _ => generators::fork_join(
                    1.0,
                    &generators::random_weights(12, 1.0, 4.0, &mut rng),
                    2.0,
                ),
            };
            let deadline = 1.6 * taskgraph::analysis::critical_path_weight(&g)
                / models[i % models.len()].top_speed().unwrap_or(1.0);
            CorpusJob {
                name: format!("job_{i:02}.inst"),
                graph: g,
                model: models[i % models.len()].clone(),
                deadline,
            }
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("reclaim-corpus-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn two_runs_produce_byte_identical_manifests() {
    const SHARDS: usize = 4;
    let p = models::PowerLaw::CUBIC;

    let first = run_corpus(corpus_jobs(), SHARDS, p);
    // Second run: same jobs, reversed arrival order — assignment and
    // manifests must not care.
    let mut reversed = corpus_jobs();
    reversed.reverse();
    let second = run_corpus(reversed, SHARDS, p);

    let dir_a = temp_dir("a");
    let dir_b = temp_dir("b");
    let written_a = write_outputs(&dir_a, &first).unwrap();
    let written_b = write_outputs(&dir_b, &second).unwrap();
    assert_eq!(written_a.len(), 2 * SHARDS, "manifest + BENCH per shard");
    assert_eq!(written_b.len(), 2 * SHARDS);

    for shard in 0..SHARDS {
        let name = format!("corpus_shard_{shard}.json");
        let a = std::fs::read(dir_a.join(&name)).unwrap();
        let b = std::fs::read(dir_b.join(&name)).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "{name} must be byte-identical across runs");
        // BENCH records exist and carry the harness schema; their
        // timing field is allowed to differ run to run.
        let bench =
            std::fs::read_to_string(dir_a.join(format!("BENCH_corpus_{shard}.json"))).unwrap();
        for key in [
            "\"experiment\"",
            "\"mean_ns\"",
            "\"instance_size\"",
            "\"metrics\"",
        ] {
            assert!(bench.contains(key), "BENCH record missing {key}");
        }
    }

    // Every job landed in exactly one shard.
    let placed: usize = first.iter().map(|o| o.entries.len()).sum();
    assert_eq!(placed, 10);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn shard_count_one_is_a_plain_sequential_run() {
    let outcomes = run_corpus(corpus_jobs(), 1, models::PowerLaw::CUBIC);
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].entries.len(), 10);
    assert!(outcomes[0]
        .entries
        .windows(2)
        .all(|w| w[0].name <= w[1].name));
}
