//! Property tests for the barrier solver against closed-form optima.

use convex::{BarrierSolver, LinearConstraint, Objective};
use proptest::prelude::*;

/// Separable quadratic `Σ (x_i − c_i)²`.
struct Quad {
    center: Vec<f64>,
}

impl Objective for Quad {
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            g[i] = 2.0 * (x[i] - self.center[i]);
        }
    }
    fn hess_diag(&self, x: &[f64], h: &mut [f64]) {
        for v in h.iter_mut().take(x.len()) {
            *v = 2.0;
        }
    }
}

/// The paper's energy objective `Σ w³/d²`.
struct Energy {
    w: Vec<f64>,
}

impl Objective for Energy {
    fn value(&self, x: &[f64]) -> f64 {
        if x.iter().any(|&d| d <= 0.0) {
            return f64::INFINITY;
        }
        x.iter()
            .zip(&self.w)
            .map(|(&d, &w)| w * w * w / (d * d))
            .sum()
    }
    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            let w = self.w[i];
            g[i] = -2.0 * w * w * w / (x[i] * x[i] * x[i]);
        }
    }
    fn hess_diag(&self, x: &[f64], h: &mut [f64]) {
        for i in 0..x.len() {
            let w = self.w[i];
            h[i] = 6.0 * w * w * w / (x[i] * x[i] * x[i] * x[i]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Box-constrained quadratic: the optimum is the clamped center.
    #[test]
    fn quadratic_clamps_to_box(
        centers in prop::collection::vec(-5.0f64..5.0, 1..5),
        ubs in prop::collection::vec(-2.0f64..4.0, 5),
    ) {
        let n = centers.len();
        let ub = &ubs[..n];
        let obj = Quad { center: centers.clone() };
        let cons: Vec<LinearConstraint> = (0..n)
            .map(|i| LinearConstraint::new(vec![(i, 1.0)], ub[i]))
            .collect();
        // Strictly feasible start: below every bound.
        let x0: Vec<f64> = ub.iter().map(|u| u - 1.0).collect();
        let sol = BarrierSolver::default().minimize(&obj, &cons, x0).unwrap();
        for i in 0..n {
            let expect = centers[i].min(ub[i]);
            prop_assert!((sol.x[i] - expect).abs() < 2e-3,
                "x[{i}] = {} expected {expect}", sol.x[i]);
        }
    }

    /// Chain-energy: min Σ w_i³/d_i² with Σ d ≤ D has the closed form
    /// (Σ w)³/D² at d_i ∝ w_i.
    #[test]
    fn chain_energy_closed_form(
        ws in prop::collection::vec(0.2f64..4.0, 1..6),
        d in 1.0f64..10.0,
    ) {
        let n = ws.len();
        let obj = Energy { w: ws.clone() };
        let cons = vec![LinearConstraint::new(
            (0..n).map(|i| (i, 1.0)).collect(), d)];
        let x0 = vec![d / (n as f64 + 1.0); n];
        let sol = BarrierSolver::default().minimize(&obj, &cons, x0).unwrap();
        let total: f64 = ws.iter().sum();
        let expect = total * total * total / (d * d);
        prop_assert!((sol.value - expect).abs() <= 1e-5 * expect,
            "{} vs {}", sol.value, expect);
    }

    /// The solver never returns an infeasible point.
    #[test]
    fn solution_respects_constraints(
        centers in prop::collection::vec(-3.0f64..3.0, 2..4),
        rhs in 0.5f64..4.0,
    ) {
        let n = centers.len();
        let obj = Quad { center: centers };
        // Σ x ≤ rhs plus x_i ≥ −10 (as −x_i ≤ 10).
        let mut cons = vec![LinearConstraint::new(
            (0..n).map(|i| (i, 1.0)).collect(), rhs)];
        for i in 0..n {
            cons.push(LinearConstraint::new(vec![(i, -1.0)], 10.0));
        }
        let x0 = vec![-1.0; n];
        let sol = BarrierSolver::default().minimize(&obj, &cons, x0).unwrap();
        for c in &cons {
            prop_assert!(c.slack(&sol.x) >= -1e-9);
        }
    }
}
