//! Log-barrier interior-point method for convex, separable objectives
//! under sparse linear inequality constraints.

use crate::linalg::Matrix;
use std::fmt;

/// A sparse linear inequality `Σ coeffs·x ≤ rhs`.
#[derive(Debug, Clone)]
pub struct LinearConstraint {
    /// `(variable, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearConstraint {
    /// Build a constraint.
    pub fn new(coeffs: Vec<(usize, f64)>, rhs: f64) -> LinearConstraint {
        LinearConstraint { coeffs, rhs }
    }

    /// Slack `rhs − Σ coeffs·x` at a point (positive = strictly
    /// feasible).
    pub fn slack(&self, x: &[f64]) -> f64 {
        self.rhs - self.coeffs.iter().map(|&(j, c)| c * x[j]).sum::<f64>()
    }
}

/// A convex objective with a **diagonal** Hessian (separable in the
/// coordinates). Coordinates where the objective has no curvature may
/// report zero — the constraint barrier supplies the missing
/// curvature.
///
/// Implementations must return `f64::INFINITY` outside the objective's
/// domain (e.g. a non-positive duration): the line search treats an
/// infinite value as an inadmissible step.
pub trait Objective {
    /// Objective value at `x` (`INFINITY` outside the domain).
    fn value(&self, x: &[f64]) -> f64;
    /// Gradient at `x` (only called at domain points).
    fn gradient(&self, x: &[f64], grad: &mut [f64]);
    /// Diagonal of the Hessian at `x`.
    fn hess_diag(&self, x: &[f64], hess: &mut [f64]);
}

/// Why the barrier solver gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvexError {
    /// The initial point violates a constraint (or is on its boundary).
    InfeasibleStart { constraint: usize, slack: f64 },
    /// The Newton system could not be solved (NaN/Inf propagation).
    NumericalFailure,
    /// The inner Newton loop failed to make progress.
    Stalled,
}

impl fmt::Display for ConvexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvexError::InfeasibleStart { constraint, slack } => {
                write!(
                    f,
                    "start point violates constraint {constraint} (slack {slack})"
                )
            }
            ConvexError::NumericalFailure => write!(f, "Newton system unsolvable"),
            ConvexError::Stalled => write!(f, "barrier method stalled"),
        }
    }
}

impl std::error::Error for ConvexError {}

/// Result of a successful barrier minimization.
#[derive(Debug, Clone)]
pub struct BarrierSolution {
    /// The (strictly feasible) minimizer approximation.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Final duality-gap bound `m / t`.
    pub gap: f64,
    /// Total Newton steps across all centering problems.
    pub newton_steps: usize,
    /// The barrier weight the solve terminated at. Feed
    /// `t_final / mu` back into [`BarrierSolver::minimize_warm`] (via
    /// [`WarmStart`]) to re-enter the central path near its end on the
    /// next, nearby problem of a sweep.
    pub t_final: f64,
}

/// A warm-start hint for [`BarrierSolver::minimize_warm`]: the
/// previous solve's (rescaled) primal point plus the barrier weight it
/// terminated at. A sweep caller keeps one of these per chain and
/// shrinks Newton work from `O(log(m/tol))` centering rounds to one
/// or two.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// A point expected to be strictly feasible for the *new* problem
    /// (the caller is responsible for any rescaling that makes it so).
    pub x: Vec<f64>,
    /// The barrier weight the previous solve ended at.
    pub t_final: f64,
}

/// The log-barrier solver (Boyd & Vandenberghe §11.3).
#[derive(Debug, Clone)]
pub struct BarrierSolver {
    /// Target duality-gap bound `m / t` (absolute, also scaled by the
    /// objective magnitude).
    pub tol: f64,
    /// Barrier weight multiplier per outer iteration.
    pub mu: f64,
    /// Maximum Newton steps per centering problem.
    pub max_newton: usize,
    /// Line-search backtracking factor.
    pub beta: f64,
    /// Line-search sufficient-decrease factor.
    pub alpha: f64,
}

impl Default for BarrierSolver {
    fn default() -> Self {
        BarrierSolver {
            tol: 1e-9,
            mu: 20.0,
            max_newton: 80,
            beta: 0.5,
            alpha: 0.25,
        }
    }
}

impl BarrierSolver {
    /// A solver targeting relative precision `1/K` on the objective
    /// (used by the Theorem 5 approximation scheme: polynomial in `K`
    /// because the outer loop needs `O(log(m·K))` centering steps).
    pub fn with_precision_k(k: u32) -> BarrierSolver {
        BarrierSolver {
            tol: 1.0 / (k.max(1) as f64),
            ..BarrierSolver::default()
        }
    }

    /// Minimize `obj` subject to `constraints`, starting from the
    /// strictly feasible `x0`.
    pub fn minimize(
        &self,
        obj: &dyn Objective,
        constraints: &[LinearConstraint],
        x0: Vec<f64>,
    ) -> Result<BarrierSolution, ConvexError> {
        self.minimize_from(obj, constraints, x0, 1.0)
    }

    /// [`BarrierSolver::minimize`] seeded from a previous, nearby
    /// solve: start from `warm.x` (if it is strictly feasible for
    /// *these* constraints) at barrier weight `warm.t_final` — the
    /// point sits near the end of the previous problem's central path,
    /// so re-entering *there* usually needs one centering round, while
    /// re-climbing from `t = 1` would first drag the near-optimal
    /// point all the way back to the analytic center. Falls back to
    /// the cold `x0` path when the warm point is inadmissible or the
    /// warm solve fails, so this never errors where [`Self::minimize`]
    /// would succeed.
    pub fn minimize_warm(
        &self,
        obj: &dyn Objective,
        constraints: &[LinearConstraint],
        x0: Vec<f64>,
        warm: Option<&WarmStart>,
    ) -> Result<BarrierSolution, ConvexError> {
        if let Some(w) = warm {
            let admissible = w.x.len() == x0.len()
                && constraints.iter().all(|c| c.slack(&w.x) > 0.0)
                && obj.value(&w.x).is_finite();
            if admissible {
                let t0 = w.t_final.max(1.0);
                if let Ok(sol) = self.minimize_from(obj, constraints, w.x.clone(), t0) {
                    return Ok(sol);
                }
            }
        }
        self.minimize_from(obj, constraints, x0, 1.0)
    }

    /// The engine behind both entry points: barrier minimization
    /// starting at weight `t0 ≥ 1`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(s > 0)` must also reject NaN slack
    fn minimize_from(
        &self,
        obj: &dyn Objective,
        constraints: &[LinearConstraint],
        x0: Vec<f64>,
        t0: f64,
    ) -> Result<BarrierSolution, ConvexError> {
        let n = x0.len();
        let m = constraints.len().max(1) as f64;
        // Verify strict feasibility of the start.
        for (k, c) in constraints.iter().enumerate() {
            let s = c.slack(&x0);
            if !(s > 0.0) {
                return Err(ConvexError::InfeasibleStart {
                    constraint: k,
                    slack: s,
                });
            }
        }
        if !obj.value(&x0).is_finite() {
            return Err(ConvexError::InfeasibleStart {
                constraint: usize::MAX,
                slack: f64::NAN,
            });
        }

        let mut x = x0;
        let mut t = t0.max(1.0);
        let mut newton_steps = 0usize;
        let mut grad = vec![0.0; n];
        let mut hdiag = vec![0.0; n];

        loop {
            // ---- Centering: Newton on  t·f(x) − Σ log(slack_k).
            let mut made_progress = false;
            for _ in 0..self.max_newton {
                // Gradient and Hessian of the barrier-augmented
                // objective.
                obj.gradient(&x, &mut grad);
                obj.hess_diag(&x, &mut hdiag);
                let mut g: Vec<f64> = grad.iter().map(|v| t * v).collect();
                let mut h = Matrix::zeros(n);
                for (i, &d) in hdiag.iter().enumerate() {
                    h.add(i, i, t * d);
                }
                for c in constraints {
                    let s = c.slack(&x);
                    let inv = 1.0 / s;
                    for &(j, cj) in &c.coeffs {
                        g[j] += cj * inv;
                    }
                    let inv2 = inv * inv;
                    for &(j1, c1) in &c.coeffs {
                        for &(j2, c2) in &c.coeffs {
                            h.add(j1, j2, c1 * c2 * inv2);
                        }
                    }
                }
                let dx = h.solve_spd(&g).ok_or(ConvexError::NumericalFailure)?;
                // Newton decrement λ² = gᵀ H⁻¹ g = gᵀ dx.
                let lambda2: f64 = g.iter().zip(&dx).map(|(a, b)| a * b).sum();
                if !lambda2.is_finite() {
                    return Err(ConvexError::NumericalFailure);
                }
                if lambda2 / 2.0 <= 1e-12 {
                    break;
                }
                // Backtracking line search on the true barrier value
                // with strict-feasibility checks.
                let f0 = self.barrier_value(obj, constraints, &x, t);
                let gdx: f64 = lambda2; // directional derivative of −dx is −λ²
                let mut step = 1.0;
                let mut accepted = false;
                for _ in 0..60 {
                    let cand: Vec<f64> = x.iter().zip(&dx).map(|(xi, di)| xi - step * di).collect();
                    let feasible = constraints.iter().all(|c| c.slack(&cand) > 0.0);
                    if feasible {
                        let fv = self.barrier_value(obj, constraints, &cand, t);
                        if fv.is_finite() && fv <= f0 - self.alpha * step * gdx {
                            x = cand;
                            accepted = true;
                            break;
                        }
                    }
                    step *= self.beta;
                }
                newton_steps += 1;
                if !accepted {
                    // Cannot decrease further: either converged to
                    // machine precision or stuck.
                    break;
                }
                made_progress = true;
            }
            // ---- Outer loop: shrink the gap bound.
            let value = obj.value(&x);
            let gap = m / t;
            let scale = 1.0 + value.abs();
            if gap <= self.tol * scale {
                return Ok(BarrierSolution {
                    x,
                    value,
                    gap,
                    newton_steps,
                    t_final: t,
                });
            }
            if !made_progress && gap > self.tol * scale * 1e3 {
                return Err(ConvexError::Stalled);
            }
            t *= self.mu;
        }
    }

    fn barrier_value(
        &self,
        obj: &dyn Objective,
        constraints: &[LinearConstraint],
        x: &[f64],
        t: f64,
    ) -> f64 {
        let f = obj.value(x);
        if !f.is_finite() {
            return f64::INFINITY;
        }
        let mut v = t * f;
        for c in constraints {
            let s = c.slack(x);
            if s <= 0.0 {
                return f64::INFINITY;
            }
            v -= s.ln();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = Σ (x_i − c_i)².
    struct Quadratic {
        center: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn value(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                g[i] = 2.0 * (x[i] - self.center[i]);
            }
        }
        fn hess_diag(&self, x: &[f64], h: &mut [f64]) {
            for v in h.iter_mut().take(x.len()) {
                *v = 2.0;
            }
        }
    }

    /// f(d) = Σ w_i³/d_i² — the paper's objective.
    struct EnergyObj {
        w: Vec<f64>,
    }

    impl Objective for EnergyObj {
        fn value(&self, x: &[f64]) -> f64 {
            if x.iter().any(|&d| d <= 0.0) {
                return f64::INFINITY;
            }
            x.iter()
                .zip(&self.w)
                .map(|(&d, &w)| w * w * w / (d * d))
                .sum()
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            for i in 0..x.len() {
                let w = self.w[i];
                g[i] = -2.0 * w * w * w / (x[i] * x[i] * x[i]);
            }
        }
        fn hess_diag(&self, x: &[f64], h: &mut [f64]) {
            for i in 0..x.len() {
                let w = self.w[i];
                h[i] = 6.0 * w * w * w / (x[i] * x[i] * x[i] * x[i]);
            }
        }
    }

    #[test]
    fn unconstrained_interior_optimum() {
        // Minimize (x−1)² + (y−2)² with x,y ≤ 10 (inactive): optimum
        // at the center.
        let obj = Quadratic {
            center: vec![1.0, 2.0],
        };
        let cons = vec![
            LinearConstraint::new(vec![(0, 1.0)], 10.0),
            LinearConstraint::new(vec![(1, 1.0)], 10.0),
        ];
        let sol = BarrierSolver::default()
            .minimize(&obj, &cons, vec![5.0, 5.0])
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "{:?}", sol.x);
        assert!((sol.x[1] - 2.0).abs() < 1e-4);
        assert!(sol.value < 1e-7);
    }

    #[test]
    fn active_constraint_optimum() {
        // Minimize (x−3)² s.t. x ≤ 2 → x* = 2.
        let obj = Quadratic { center: vec![3.0] };
        let cons = vec![LinearConstraint::new(vec![(0, 1.0)], 2.0)];
        let sol = BarrierSolver::default()
            .minimize(&obj, &cons, vec![0.0])
            .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-4, "{:?}", sol.x);
        assert!((sol.value - 1.0).abs() < 1e-3);
    }

    #[test]
    fn chain_energy_matches_closed_form() {
        // min w1³/d1² + w2³/d2²  s.t.  d1 + d2 ≤ D.
        // Optimal split d_i ∝ w_i  → energy (w1+w2)³/D².
        let (w1, w2, dl) = (2.0, 3.0, 4.0);
        let obj = EnergyObj { w: vec![w1, w2] };
        let cons = vec![LinearConstraint::new(vec![(0, 1.0), (1, 1.0)], dl)];
        let sol = BarrierSolver::default()
            .minimize(&obj, &cons, vec![dl / 3.0, dl / 3.0])
            .unwrap();
        let expect = (w1 + w2) * (w1 + w2) * (w1 + w2) / (dl * dl);
        assert!(
            (sol.value - expect).abs() < 1e-6 * expect,
            "value {} vs {}",
            sol.value,
            expect
        );
        // d_i proportional to w_i.
        assert!((sol.x[0] / sol.x[1] - w1 / w2).abs() < 1e-4);
    }

    #[test]
    fn infeasible_start_rejected() {
        let obj = Quadratic { center: vec![0.0] };
        let cons = vec![LinearConstraint::new(vec![(0, 1.0)], 1.0)];
        let err = BarrierSolver::default()
            .minimize(&obj, &cons, vec![2.0])
            .unwrap_err();
        assert!(matches!(
            err,
            ConvexError::InfeasibleStart { constraint: 0, .. }
        ));
    }

    #[test]
    fn boundary_start_rejected() {
        let obj = Quadratic { center: vec![0.0] };
        let cons = vec![LinearConstraint::new(vec![(0, 1.0)], 1.0)];
        // Slack exactly zero: not strictly feasible.
        let err = BarrierSolver::default()
            .minimize(&obj, &cons, vec![1.0])
            .unwrap_err();
        assert!(matches!(err, ConvexError::InfeasibleStart { .. }));
    }

    #[test]
    fn warm_start_shrinks_newton_work_and_matches_cold() {
        // A sweep of nearby problems: minimize Σ w³/d² under
        // d1 + d2 ≤ D for growing D. The warm chain must agree with
        // cold solves pointwise and spend measurably fewer Newton
        // steps in total (it re-enters the central path near its end).
        let obj = EnergyObj { w: vec![2.0, 3.0] };
        let solver = BarrierSolver::default();
        let sweep: Vec<f64> = (0..8).map(|k| 4.0 + 0.35 * k as f64).collect();
        let mut cold_steps = 0usize;
        let mut warm_steps = 0usize;
        let mut warm: Option<WarmStart> = None;
        for &dl in &sweep {
            let cons = vec![LinearConstraint::new(vec![(0, 1.0), (1, 1.0)], dl)];
            let x0 = vec![dl / 3.0, dl / 3.0];
            let cold = solver.minimize(&obj, &cons, x0.clone()).unwrap();
            cold_steps += cold.newton_steps;
            let w = solver
                .minimize_warm(&obj, &cons, x0, warm.as_ref())
                .unwrap();
            warm_steps += w.newton_steps;
            let expect = 125.0 / (dl * dl); // (2+3)³/D²
            assert!(
                (w.value - expect).abs() < 1e-6 * expect,
                "warm value {} vs closed form {expect} at D = {dl}",
                w.value
            );
            warm = Some(WarmStart {
                x: w.x.clone(),
                t_final: w.t_final,
            });
        }
        assert!(
            warm_steps < cold_steps,
            "warm chain must save Newton steps: {warm_steps} vs {cold_steps}"
        );
    }

    #[test]
    fn infeasible_warm_hint_falls_back_to_cold() {
        let obj = Quadratic { center: vec![3.0] };
        let cons = vec![LinearConstraint::new(vec![(0, 1.0)], 2.0)];
        // Warm point outside the feasible region: must be ignored.
        let bogus = WarmStart {
            x: vec![5.0],
            t_final: 1e9,
        };
        let sol = solver_default_warm(&obj, &cons, vec![0.0], Some(&bogus));
        assert!((sol.x[0] - 2.0).abs() < 1e-4);
    }

    fn solver_default_warm(
        obj: &dyn Objective,
        cons: &[LinearConstraint],
        x0: Vec<f64>,
        warm: Option<&WarmStart>,
    ) -> BarrierSolution {
        BarrierSolver::default()
            .minimize_warm(obj, cons, x0, warm)
            .unwrap()
    }

    #[test]
    fn precision_k_constructor() {
        let s = BarrierSolver::with_precision_k(100);
        assert!((s.tol - 0.01).abs() < 1e-12);
        let s0 = BarrierSolver::with_precision_k(0);
        assert!((s0.tol - 1.0).abs() < 1e-12);
    }
}
