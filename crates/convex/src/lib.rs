//! # convex — log-barrier interior-point substrate
//!
//! §2.1 of the paper observes that `MinEnergy(Ĝ, D)` under the
//! Continuous model on an arbitrary execution graph "is a geometric
//! programming problem … for which efficient numerical schemes exist",
//! and that the optimal speeds are irrational in general, so one
//! "solves the problem numerically and gets fixed-size numbers which
//! are good approximations of the optimal values". This crate is that
//! numerical scheme, built from scratch (no external solver crates):
//!
//! * [`linalg`] — dense symmetric positive-definite linear algebra
//!   (Cholesky with ridge fallback);
//! * [`barrier`] — a log-barrier Newton interior-point method for
//!   convex objectives with **diagonal Hessians** under sparse linear
//!   inequality constraints. The MinEnergy objective
//!   `Σ w_i^α / d_i^{α−1}` is separable in the durations, so the
//!   diagonal-Hessian restriction is exact, and each precedence
//!   constraint has at most three nonzeros, keeping the Newton system
//!   assembly cheap.
//!
//! The barrier method is the standard one (Boyd & Vandenberghe §11,
//! the reference the paper itself cites): follow the central path,
//! multiplying the barrier weight by `mu` until the duality gap bound
//! `m / t` falls under the caller's tolerance.

pub mod barrier;
pub mod linalg;

pub use barrier::{
    BarrierSolution, BarrierSolver, ConvexError, LinearConstraint, Objective, WarmStart,
};
pub use linalg::Matrix;
