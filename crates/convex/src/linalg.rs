//! Dense symmetric linear algebra for the Newton steps.

// Indexed loops are the house style for the dense kernels below:
// every statement touches several rows/columns at once, where
// iterator chains obscure the math.
#![allow(clippy::needless_range_loop)]

/// A dense square matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    a: Vec<f64>,
}

impl Matrix {
    /// The `n × n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] += v;
    }

    /// Add `v` to the whole diagonal (ridge regularization).
    pub fn add_ridge(&mut self, v: f64) {
        for i in 0..self.n {
            self.a[i * self.n + i] += v;
        }
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let row = &self.a[i * self.n..(i + 1) * self.n];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Cholesky factorization `A = L·Lᵀ` (lower triangular), in place.
    /// Returns `false` when the matrix is not (numerically) positive
    /// definite.
    pub fn cholesky_in_place(&mut self) -> bool {
        let n = self.n;
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                let l = self.get(j, k);
                d -= l * l;
            }
            if d <= 0.0 || !d.is_finite() {
                return false;
            }
            let d = d.sqrt();
            self.set(j, j, d);
            for i in (j + 1)..n {
                let mut v = self.get(i, j);
                for k in 0..j {
                    v -= self.get(i, k) * self.get(j, k);
                }
                self.set(i, j, v / d);
            }
        }
        // Zero the strict upper triangle so the factor is clean.
        for i in 0..n {
            for j in (i + 1)..n {
                self.set(i, j, 0.0);
            }
        }
        true
    }

    /// Solve `L·Lᵀ·x = b` given the Cholesky factor stored in `self`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for k in 0..i {
                v -= self.get(i, k) * y[k];
            }
            y[i] = v / self.get(i, i);
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= self.get(k, i) * x[k];
            }
            x[i] = v / self.get(i, i);
        }
        x
    }

    /// Solve the SPD system `A·x = b`, adding an escalating ridge when
    /// the factorization fails (near-singular Hessians at the end of
    /// the central path). Returns `None` only if even a heavily
    /// regularized system fails, which indicates NaN/Inf input.
    pub fn solve_spd(mut self, b: &[f64]) -> Option<Vec<f64>> {
        let base: f64 = {
            // Scale the ridge with the largest diagonal entry.
            let mut m = 0.0f64;
            for i in 0..self.n {
                m = m.max(self.get(i, i).abs());
            }
            m.max(1.0)
        };
        let mut ridge = 0.0;
        for attempt in 0..8 {
            let mut trial = self.clone();
            if ridge > 0.0 {
                trial.add_ridge(ridge);
            }
            if trial.cholesky_in_place() {
                return Some(trial.cholesky_solve(b));
            }
            ridge = base * 1e-12 * 10f64.powi(attempt);
        }
        // Last resort: huge ridge.
        self.add_ridge(base);
        if self.cholesky_in_place() {
            Some(self.cholesky_solve(b))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B = [[1,2,0],[0,1,1],[1,0,1]] is SPD.
        let b = [[1.0, 2.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]];
        let mut a = Matrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = if i == j { 1.0 } else { 0.0 };
                for k in 0..3 {
                    v += b[k][i] * b[k][j];
                }
                a.set(i, j, v);
            }
        }
        a
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let mut f = a.clone();
        assert!(f.cholesky_in_place());
        let x = f.cholesky_solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn non_spd_detected() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, -1.0);
        assert!(!m.cholesky_in_place());
    }

    #[test]
    fn solve_spd_with_ridge_fallback() {
        // Singular PSD matrix: ones(2). Ridge makes it solvable.
        let mut m = Matrix::zeros(2);
        for i in 0..2 {
            for j in 0..2 {
                m.set(i, j, 1.0);
            }
        }
        let x = m.solve_spd(&[1.0, 1.0]).expect("regularized solve");
        // Solution of (ones + εI)x = 1 is x ≈ [0.5, 0.5].
        assert!((x[0] - 0.5).abs() < 1e-3 && (x[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn matvec_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        assert_eq!(m.matvec(&[4.0, 5.0, 6.0]), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn add_accumulates() {
        let mut m = Matrix::zeros(2);
        m.add(0, 1, 2.0);
        m.add(0, 1, 3.0);
        assert_eq!(m.get(0, 1), 5.0);
        m.add_ridge(1.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }
}
