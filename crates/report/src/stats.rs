//! Summary statistics for experiment series.

/// Arithmetic mean (NaN for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean (the standard aggregate for energy *ratios*; NaN for
/// an empty slice, requires positive inputs).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Maximum (NaN for an empty slice).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Minimum (NaN for an empty slice).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Sample standard deviation (N−1 denominator; 0 for fewer than two
/// samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A five-number summary of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean.
    pub geo_mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarize a series.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            geo_mean: geo_mean(xs),
            min: min(xs),
            max: max(xs),
            std_dev: std_dev(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let xs = [1.0, 2.0, 4.0];
        assert!((mean(&xs) - 7.0 / 3.0).abs() < 1e-12);
        assert!((geo_mean(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(max(&xs), 4.0);
        assert_eq!(min(&xs), 1.0);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known example: population σ = 2, sample s = 2.138...
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn empty_series() {
        assert!(mean(&[]).is_nan());
        assert!(geo_mean(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn summary_struct() {
        let s = Summary::of(&[1.0, 2.0, 4.0]);
        assert_eq!(s.n, 3);
        assert!((s.geo_mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }
}
