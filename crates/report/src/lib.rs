//! # report — tables, CSV, and summary statistics
//!
//! Small presentation substrate used by the experiment binaries: an
//! ASCII [`Table`] renderer, CSV output, and the summary statistics
//! ([`stats`]) that the experiment index in DESIGN.md reports
//! (mean, geometric mean, max ratios).

pub mod spark;
pub mod stats;
pub mod table;

pub use spark::{sparkline, sparkline_scaled};
pub use stats::{geo_mean, max, mean, Summary};
pub use table::Table;
