//! ASCII table rendering and CSV export.

/// A simple column-aligned table.
///
/// ```
/// use report::Table;
/// let mut t = Table::new(&["n", "energy"]);
/// t.row(&["4".into(), "1.25".into()]);
/// let s = t.render();
/// assert!(s.contains("energy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Append a row of display-able values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a column-aligned ASCII table with a separator line.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (j, c) in r.iter().enumerate() {
                widths[j] = widths[j].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for j in 0..ncols {
                if j > 0 {
                    line.push_str("  ");
                }
                let c = &cells[j];
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.eE%x".contains(ch));
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = widths[j]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = widths[j]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows, comma-separated; cells containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a fixed number of significant decimals, used by
/// all experiment binaries for consistent columns.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["model", "energy"]);
        t.row(&["Continuous".into(), "1.0".into()]);
        t.row(&["Discrete".into(), "1.4321".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with("Continuous"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_and_fmt() {
        let mut t = Table::new(&["n"]);
        t.row_display(&[42]);
        assert!(t.render().contains("42"));
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
