//! Unicode sparklines for quick curve visualization in terminal
//! output (`reclaim sweep`, experiment summaries).

/// Eight-level block characters.
const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a series as a sparkline string. Values are scaled to the
/// series' own min..max range; an empty series renders empty, a
/// constant series renders mid-level blocks.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if range <= 1e-300 {
                return LEVELS[3];
            }
            let idx = ((v - lo) / range * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

/// Sparkline with explicit bounds (for comparable charts across rows).
pub fn sparkline_scaled(values: &[f64], lo: f64, hi: f64) -> String {
    assert!(hi > lo);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            let idx = ((v - lo) / (hi - lo) * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_series_renders_monotone() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
    }

    #[test]
    fn constant_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert!(s.chars().all(|c| c == '▄'));
    }

    #[test]
    fn nan_marked() {
        let s = sparkline(&[1.0, f64::NAN, 2.0]);
        assert!(s.contains('?'));
    }

    #[test]
    fn scaled_version_uses_external_bounds() {
        // 5/10 of the range → index round(3.5) = 4.
        let s = sparkline_scaled(&[5.0], 0.0, 10.0);
        assert_eq!(s, "▅");
        assert_eq!(sparkline_scaled(&[0.0, 10.0], 0.0, 10.0), "▁█");
    }
}
