//! # lp — dense two-phase primal simplex
//!
//! Theorem 3 states that `MinEnergy(Ĝ, D)` under Vdd-Hopping "can be
//! solved in polynomial time (via linear programming)". The offline
//! policy forbids external solver crates, so this crate implements the
//! substrate from scratch: a dense tableau two-phase primal simplex
//! with Bland's anti-cycling rule.
//!
//! The entry point is [`Problem`]: build a minimization problem with
//! non-negative variables and `≤` / `≥` / `=` rows, then call
//! [`Problem::solve`] — or [`Problem::solve_prepared`] when the same
//! problem will be re-solved under right-hand-side changes (deadline
//! sweeps): the returned [`PreparedLp`] re-optimizes from the retained
//! optimal basis with dual-simplex pivots instead of a cold two-phase
//! run.
//!
//! Scope: the Vdd LPs have a few hundred variables and rows; a dense
//! tableau is both simple and fast enough (`O(rows·cols)` per pivot).
//! Degenerate pivots fall back to Bland's rule, guaranteeing
//! termination.

mod simplex;

pub use simplex::{
    Constraint, LpError, LpSolution, PreparedLp, Problem, RayEnd, RaySegment, Relation, RhsRay,
};
