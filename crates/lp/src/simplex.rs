//! Two-phase dense tableau simplex.

use std::fmt;

/// Numerical tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// Row relation in a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// One linear constraint over the problem's variables (sparse form).
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (they
    /// are summed).
    pub coeffs: Vec<(usize, f64)>,
    /// The relation between `aᵀx` and `rhs`.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Solver failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set admits no solution with `x ≥ 0`.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// Iteration cap exceeded (should not happen with Bland's rule;
    /// kept as a hard safety net).
    IterationLimit,
    /// A warm re-solve ([`PreparedLp::resolve_rhs`]) left the retained
    /// basis unable to represent the perturbed problem (a degenerate
    /// basic artificial was pushed to a positive level). The handle is
    /// spent; re-solve cold to get a definitive answer.
    WarmStartLost,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP infeasible"),
            LpError::Unbounded => write!(f, "LP unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::WarmStartLost => write!(f, "warm basis lost after RHS change"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal variable values (length = number of variables).
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
}

/// A linear minimization problem over non-negative variables.
///
/// ```
/// use lp::{Problem, Relation};
/// // min  −x − y   s.t.  x + y ≤ 1,  x, y ≥ 0   (optimum −1)
/// let mut p = Problem::new(2);
/// p.set_objective(&[(0, -1.0), (1, -1.0)]);
/// p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
/// let s = p.solve().unwrap();
/// assert!((s.objective + 1.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    nvars: usize,
    costs: Vec<f64>,
    rows: Vec<Constraint>,
}

impl Problem {
    /// A problem with `nvars` non-negative variables and zero
    /// objective.
    pub fn new(nvars: usize) -> Problem {
        Problem {
            nvars,
            costs: vec![0.0; nvars],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of constraints.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Set the (sparse) minimization objective `cᵀx`.
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) {
        self.costs = vec![0.0; self.nvars];
        for &(j, c) in coeffs {
            assert!(j < self.nvars, "objective references variable {j}");
            self.costs[j] += c;
        }
    }

    /// Add a constraint row.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], rel: Relation, rhs: f64) {
        for &(j, _) in coeffs {
            assert!(j < self.nvars, "constraint references variable {j}");
        }
        self.rows.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Solve with the two-phase primal simplex.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        Tableau::build(self).solve(&self.costs, self.nvars)
    }

    /// Solve, returning the solution **and** a warm-start handle that
    /// can re-solve the problem after right-hand-side changes without
    /// repeating the two phases (see [`PreparedLp::resolve_rhs`]).
    pub fn solve_prepared(self) -> Result<(LpSolution, PreparedLp), LpError> {
        let mut tab = Tableau::build(&self);
        let sol = tab.solve(&self.costs, self.nvars)?;
        Ok((
            sol,
            PreparedLp {
                tab,
                costs: self.costs,
                nvars: self.nvars,
            },
        ))
    }
}

/// A solved LP retained in its final (optimal-basis) tableau form, for
/// cheap re-solves under right-hand-side perturbations — the classic
/// parametric-RHS situation of a deadline sweep, where only the
/// `t_i ≤ D` bounds move between solves.
///
/// The optimal basis stays **dual feasible** when `b` changes (reduced
/// costs do not depend on `b`), so re-optimization needs no phase 1:
/// if the updated basic solution is still non-negative the old basis
/// is immediately optimal, and otherwise a few dual-simplex pivots
/// restore feasibility — typically orders of magnitude cheaper than a
/// cold solve.
pub struct PreparedLp {
    tab: Tableau,
    costs: Vec<f64>,
    nvars: usize,
}

impl PreparedLp {
    /// Re-solve after setting the RHS of the given original rows to
    /// new values (`changes` holds `(row_index, new_rhs)` pairs; rows
    /// not mentioned — and rows whose new value equals the current one
    /// — keep their RHS at no cost).
    ///
    /// Any row kind qualifies, `Eq` rows included: the basis stays
    /// dual feasible because reduced costs do not depend on `b`. The
    /// two parametric families this crate is used for are deadline
    /// sweeps (`t_i ≤ D` rows, see `reclaim_core::vdd::solve_lp_sweep`)
    /// and **weight deltas** (the `Σ s_j·x_{ij} = w_i` work rows, see
    /// `reclaim_core::vdd::VddWarm` — the substrate of the daemon's
    /// `patch` request).
    ///
    /// Errors: `Infeasible` when the perturbed problem has no feasible
    /// point; `IterationLimit` / `WarmStartLost` when the warm basis
    /// cannot be re-optimized (the caller should fall back to a cold
    /// [`Problem::solve`]).
    pub fn resolve_rhs(&mut self, changes: &[(usize, f64)]) -> Result<LpSolution, LpError> {
        self.tab.update_rhs(changes);
        self.tab.dual_simplex(&self.costs)?;
        // A degenerate basic artificial (level 0 at the optimum, so
        // invisible to the dual pivots, which only chase *negative*
        // values) may have been pushed positive by the RHS update; the
        // basis then no longer represents the real constraint set and
        // extract() would silently drop the violation.
        if self.tab.artificial_active() {
            return Err(LpError::WarmStartLost);
        }
        Ok(self.tab.extract(&self.costs, self.nvars))
    }

    /// The current solution without further changes.
    pub fn solution(&self) -> LpSolution {
        self.tab.extract(&self.costs, self.nvars)
    }

    /// Walk the optimal objective along the right-hand-side **ray**
    /// `b(t) = b + t·dir` for `t ∈ [0, t_max]`, one dual-simplex pivot
    /// per basis change, and return the exact piecewise-affine value
    /// function as [`RaySegment`]s.
    ///
    /// This is classic parametric-RHS programming: for a fixed optimal
    /// basis `B`, the basic solution `x_B(t) = B⁻¹(b + t·dir)` and the
    /// objective `z(t) = c_Bᵀ x_B(t)` are **affine in `t`**, and the
    /// basis stays optimal until some basic value hits zero. At that
    /// breakpoint one dual pivot (leaving row = the vanishing basic,
    /// entering column by the dual ratio test) restores optimality for
    /// the next interval. The cost is `O(breakpoints)` pivots for the
    /// whole ray — there is no per-sample work at all, which is what
    /// makes exact energy–deadline curves cheaper than sampled sweeps.
    ///
    /// `dir` holds `(original_row, direction)` pairs (rows absent from
    /// `dir` keep their RHS). The walk starts from the handle's
    /// *current* RHS (`t = 0`), which must be primal feasible — call
    /// [`PreparedLp::resolve_rhs`] first if it may not be. On success
    /// the tableau is left positioned at the end of the walk (`t_max`
    /// when [`RayEnd::Capped`], the last breakpoint otherwise), so the
    /// handle remains usable for further re-solves.
    ///
    /// Errors: `WarmStartLost` when a degenerate basic artificial
    /// blocks the walk (fall back to sampling), `IterationLimit` on a
    /// blown pivot budget.
    pub fn parametric_rhs(&mut self, dir: &[(usize, f64)], t_max: f64) -> Result<RhsRay, LpError> {
        if self.tab.artificial_active() {
            return Err(LpError::WarmStartLost);
        }
        self.tab
            .parametric_walk(&self.costs, self.nvars, dir, t_max)
    }
}

/// One maximal interval of a [`PreparedLp::parametric_rhs`] walk on
/// which the optimal basis — hence the objective as an affine function
/// of the ray parameter — is constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaySegment {
    /// Interval start (ray parameter).
    pub t_lo: f64,
    /// Interval end; `f64::INFINITY` when the final basis stays
    /// optimal for every larger `t`.
    pub t_hi: f64,
    /// Optimal objective at `t_lo`.
    pub value_lo: f64,
    /// `d(objective)/dt` on the interval: the optimum at `t` is
    /// `value_lo + slope · (t − t_lo)`.
    pub slope: f64,
}

impl RaySegment {
    /// The objective value at `t` (exact for `t` inside the segment).
    pub fn value_at(&self, t: f64) -> f64 {
        self.value_lo + self.slope * (t - self.t_lo)
    }
}

/// How a [`PreparedLp::parametric_rhs`] walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RayEnd {
    /// The walk reached the caller's `t_max` with a live basis.
    Capped,
    /// The final basis is optimal for every `t` beyond the last
    /// breakpoint (the last segment's `t_hi` is `+∞`).
    Unbounded,
    /// The problem is infeasible for `t` greater than the last
    /// segment's `t_hi`.
    Infeasible,
}

/// The exact value function along an RHS ray: contiguous affine
/// segments covering `[0, …]` from the walk's start to its end.
#[derive(Debug, Clone, PartialEq)]
pub struct RhsRay {
    /// The segments, in increasing `t`, contiguous
    /// (`segments[k].t_hi == segments[k+1].t_lo`).
    pub segments: Vec<RaySegment>,
    /// Why the walk stopped.
    pub end: RayEnd,
    /// Dual pivots the walk performed — at least `breakpoints()`, and
    /// more when degenerate vertices forced zero-length steps.
    pub pivots: usize,
}

impl RhsRay {
    /// Number of basis changes the walk crossed.
    pub fn breakpoints(&self) -> usize {
        self.segments.len().saturating_sub(1)
    }

    /// Evaluate the value function at `t` (clamped to the covered
    /// range; `None` when the ray has no segments).
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let seg = self
            .segments
            .iter()
            .rev()
            .find(|s| t >= s.t_lo)
            .or_else(|| self.segments.first())?;
        Some(seg.value_at(t.max(seg.t_lo).min(seg.t_hi)))
    }
}

/// Dense simplex tableau: `m` constraint rows over `ncols` structural +
/// slack/artificial columns, plus an objective (reduced-cost) row.
struct Tableau {
    m: usize,
    ncols: usize,
    /// Row-major `m × (ncols + 1)`; last column is the RHS.
    a: Vec<f64>,
    /// Reduced-cost row, length `ncols + 1` (last entry = −objective).
    z: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// First artificial column index (artificials occupy
    /// `art_start..ncols`).
    art_start: usize,
    /// Per row: a column whose original coefficient in that row is the
    /// unit vector `+e_row` (the slack for `Le`, the artificial for
    /// `Ge`/`Eq`). Its current tableau column therefore equals the
    /// corresponding column of `B⁻¹`, which is what an RHS update
    /// needs.
    row_unit_col: Vec<usize>,
    /// Whether the row was sign-flipped at build time (negative RHS
    /// normalization).
    row_flipped: Vec<bool>,
    /// Current internal (post-flip) RHS of each row.
    b_int: Vec<f64>,
}

impl Tableau {
    fn build(p: &Problem) -> Tableau {
        let m = p.rows.len();
        // Count extra columns: one slack per Le/Ge, one artificial per
        // Ge/Eq row (after RHS normalization).
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
        for c in &p.rows {
            let mut dense = vec![0.0; p.nvars];
            for &(j, v) in &c.coeffs {
                dense[j] += v;
            }
            let (dense, rel, rhs) = if c.rhs < 0.0 {
                // Normalize to b ≥ 0 by negating the row.
                let flipped = match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (dense.iter().map(|v| -v).collect(), flipped, -c.rhs)
            } else {
                (dense, c.rel, c.rhs)
            };
            rows.push((dense, rel, rhs));
        }
        let n_slack = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let art_start = p.nvars + n_slack;
        let ncols = art_start + n_art;
        let stride = ncols + 1;
        let mut a = vec![0.0; m * stride];
        let mut basis = vec![usize::MAX; m];
        let mut row_unit_col = vec![usize::MAX; m];
        let mut b_int = vec![0.0; m];
        let mut slack_at = p.nvars;
        let mut art_at = art_start;
        for (i, (dense, rel, rhs)) in rows.iter().enumerate() {
            let row = &mut a[i * stride..(i + 1) * stride];
            row[..p.nvars].copy_from_slice(dense);
            row[ncols] = *rhs;
            b_int[i] = *rhs;
            match rel {
                Relation::Le => {
                    row[slack_at] = 1.0;
                    basis[i] = slack_at;
                    row_unit_col[i] = slack_at;
                    slack_at += 1;
                }
                Relation::Ge => {
                    row[slack_at] = -1.0;
                    slack_at += 1;
                    row[art_at] = 1.0;
                    basis[i] = art_at;
                    row_unit_col[i] = art_at;
                    art_at += 1;
                }
                Relation::Eq => {
                    row[art_at] = 1.0;
                    basis[i] = art_at;
                    row_unit_col[i] = art_at;
                    art_at += 1;
                }
            }
        }
        let row_flipped = p.rows.iter().map(|c| c.rhs < 0.0).collect();
        Tableau {
            m,
            ncols,
            a,
            z: vec![0.0; stride],
            basis,
            art_start,
            row_unit_col,
            row_flipped,
            b_int,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        let stride = self.ncols + 1;
        &self.a[i * stride..(i + 1) * stride]
    }

    /// Gaussian pivot on `(r, c)`: make column `c` the unit vector
    /// `e_r` across all rows and the z-row.
    fn pivot(&mut self, r: usize, c: usize) {
        self.pivot_capture(r, c, None);
    }

    /// [`Tableau::pivot`], optionally writing the **pre-pivot** values
    /// of column `c` into `capture` (length `m`). The parametric walk
    /// needs that column to push its side vectors through the same row
    /// operations; capturing inside the pivot loop reuses the column
    /// reads the elimination performs anyway instead of paying a
    /// second strided scan.
    fn pivot_capture(&mut self, r: usize, c: usize, mut capture: Option<&mut [f64]>) {
        let stride = self.ncols + 1;
        let piv = self.a[r * stride + c];
        debug_assert!(piv.abs() > EPS);
        if let Some(cap) = capture.as_deref_mut() {
            cap[r] = piv;
        }
        let inv = 1.0 / piv;
        for v in &mut self.a[r * stride..(r + 1) * stride] {
            *v *= inv;
        }
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.a[i * stride + c];
            if let Some(cap) = capture.as_deref_mut() {
                // Record the *effective* multiplier: rows the
                // elimination skips as numerically zero must be
                // skipped identically by side-vector followers.
                cap[i] = if f.abs() > EPS { f } else { 0.0 };
            }
            if f.abs() > EPS {
                for j in 0..stride {
                    self.a[i * stride + j] -= f * self.a[r * stride + j];
                }
                self.a[i * stride + c] = 0.0; // kill round-off exactly
            }
        }
        let f = self.z[c];
        if f.abs() > EPS {
            for j in 0..stride {
                self.z[j] -= f * self.a[r * stride + j];
            }
            self.z[c] = 0.0;
        }
        self.basis[r] = c;
    }

    /// Rebuild the reduced-cost row for the given column costs:
    /// `z_j = c_j − c_Bᵀ B⁻¹ A_j` given the current (already reduced)
    /// tableau rows.
    fn set_costs(&mut self, col_costs: &[f64]) {
        let stride = self.ncols + 1;
        self.z = vec![0.0; stride];
        self.z[..col_costs.len()].copy_from_slice(col_costs);
        for i in 0..self.m {
            let cb = *self.z.get(self.basis[i]).unwrap_or(&0.0);
            let cb = if self.basis[i] < col_costs.len() {
                col_costs[self.basis[i]]
            } else {
                cb
            };
            if cb.abs() > 0.0 {
                let row: Vec<f64> = self.row(i).to_vec();
                for (z, &r) in self.z.iter_mut().take(stride).zip(&row) {
                    *z -= cb * r;
                }
            }
        }
    }

    /// Run simplex iterations until optimal (no negative reduced cost
    /// among `allowed` columns). `bland` switches on after a budget of
    /// Dantzig pivots, guaranteeing termination.
    fn iterate(&mut self, allowed: usize) -> Result<(), LpError> {
        let stride = self.ncols + 1;
        let max_iters = 50 * (self.m + self.ncols).max(100);
        let dantzig_budget = max_iters / 2;
        for it in 0..max_iters {
            let bland = it >= dantzig_budget;
            // Entering column.
            let mut enter = None;
            if bland {
                for j in 0..allowed {
                    if self.z[j] < -EPS {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for j in 0..allowed {
                    if self.z[j] < best {
                        best = self.z[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(c) = enter else { return Ok(()) };
            // Ratio test (leaving row), Bland tie-break on basis index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let aic = self.a[i * stride + c];
                if aic > EPS {
                    let ratio = self.a[i * stride + self.ncols] / aic;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - EPS
                                || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((r, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(r, c);
        }
        Err(LpError::IterationLimit)
    }

    fn solve(&mut self, costs: &[f64], nvars: usize) -> Result<LpSolution, LpError> {
        // ---- Phase 1: minimize the sum of artificials.
        if self.art_start < self.ncols {
            let mut phase1 = vec![0.0; self.ncols];
            for c in &mut phase1[self.art_start..self.ncols] {
                *c = 1.0;
            }
            self.set_costs(&phase1);
            self.iterate(self.ncols)?;
            let obj1 = -self.z[self.ncols];
            if obj1 > 1e-7 {
                return Err(LpError::Infeasible);
            }
            // Drive remaining (degenerate) artificials out of the basis.
            for i in 0..self.m {
                if self.basis[i] >= self.art_start {
                    let row: Vec<f64> = self.row(i).to_vec();
                    if let Some(c) = (0..self.art_start).find(|&j| row[j].abs() > 1e-7) {
                        self.pivot(i, c);
                    }
                    // Otherwise the row is redundant; the artificial
                    // stays basic at value 0 and the artificial columns
                    // are excluded from phase-2 pivoting below.
                }
            }
        }
        // ---- Phase 2: the real objective over non-artificial columns.
        let mut phase2 = vec![0.0; self.ncols];
        phase2[..nvars].copy_from_slice(costs);
        self.set_costs(&phase2);
        self.iterate(self.art_start)?;
        Ok(self.extract(costs, nvars))
    }

    /// Whether any artificial variable is basic at a level above
    /// tolerance (the tableau then violates an original `=`/`≥` row).
    fn artificial_active(&self) -> bool {
        let stride = self.ncols + 1;
        (0..self.m)
            .any(|i| self.basis[i] >= self.art_start && self.a[i * stride + self.ncols] > EPS)
    }

    /// Read the basic solution off the (optimal) tableau.
    fn extract(&self, costs: &[f64], nvars: usize) -> LpSolution {
        let stride = self.ncols + 1;
        let mut x = vec![0.0; nvars];
        for i in 0..self.m {
            let b = self.basis[i];
            if b < nvars {
                x[b] = self.a[i * stride + self.ncols];
            }
        }
        let objective: f64 = x.iter().zip(costs).map(|(xi, ci)| xi * ci).sum();
        LpSolution { x, objective }
    }

    /// Apply RHS changes `(original_row, new_rhs)` to the reduced
    /// tableau: the new basic solution is
    /// `B⁻¹b_new = B⁻¹b_old + Σ_r δ_r · (B⁻¹e_r)`, and `B⁻¹e_r` is
    /// exactly the current column of the row's build-time unit column
    /// (slack or artificial).
    fn update_rhs(&mut self, changes: &[(usize, f64)]) {
        let stride = self.ncols + 1;
        for &(r, new_rhs) in changes {
            assert!(r < self.m, "RHS change for nonexistent row {r}");
            let new_int = if self.row_flipped[r] {
                -new_rhs
            } else {
                new_rhs
            };
            let delta = new_int - self.b_int[r];
            if delta == 0.0 {
                continue;
            }
            self.b_int[r] = new_int;
            let unit = self.row_unit_col[r];
            for i in 0..self.m {
                let binv = self.a[i * stride + unit];
                if binv != 0.0 {
                    self.a[i * stride + self.ncols] += delta * binv;
                }
            }
        }
    }

    /// The engine of [`PreparedLp::parametric_rhs`]: walk `b + t·dir`
    /// from the current RHS (`t = 0`) to `t_max`, pivoting exactly
    /// once per breakpoint. See the public method for the contract.
    fn parametric_walk(
        &mut self,
        costs: &[f64],
        nvars: usize,
        dir: &[(usize, f64)],
        t_max: f64,
    ) -> Result<RhsRay, LpError> {
        let stride = self.ncols + 1;
        // Internal (post-flip) per-row direction.
        let mut d_int = vec![0.0; self.m];
        for &(r, v) in dir {
            assert!(r < self.m, "ray direction for nonexistent row {r}");
            d_int[r] += if self.row_flipped[r] { -v } else { v };
        }
        let mut segments: Vec<RaySegment> = Vec::new();
        let mut t = 0.0f64;
        let max_pivots = 50 * (self.m + self.ncols).max(100);
        let mut pivots = 0usize;
        // Merge-aware segment emitter: zero-length intervals from
        // degenerate pivots are dropped, and adjacent intervals that
        // happen to share a slope fuse into one.
        let push = |segments: &mut Vec<RaySegment>, t_lo: f64, t_hi: f64, v: f64, s: f64| {
            if t_hi <= t_lo + 1e-12 * (1.0 + t_lo.abs()) && !segments.is_empty() {
                // A zero-width (or float-noise-width) sliver: absorb
                // it into the previous segment so callers never see
                // empty intervals.
                if let Some(last) = segments.last_mut() {
                    last.t_hi = last.t_hi.max(t_hi);
                }
                return;
            }
            if let Some(last) = segments.last_mut() {
                if last.t_hi <= last.t_lo {
                    // A zero-length placeholder from a degenerate start
                    // is superseded by the first real interval.
                    *last = RaySegment {
                        t_lo,
                        t_hi,
                        value_lo: v,
                        slope: s,
                    };
                    return;
                }
                if (last.slope - s).abs() <= 1e-9 * (1.0 + s.abs()) {
                    last.t_hi = t_hi;
                    return;
                }
            }
            segments.push(RaySegment {
                t_lo,
                t_hi,
                value_lo: v,
                slope: s,
            });
        };
        // Dense side vectors maintained across pivots so the hot loop
        // never scans a tableau *column* (strided access = one cache
        // miss per row):
        //
        // * `beta = B⁻¹·d` — derived from the per-row unit columns
        //   (same identity as `update_rhs`) once here and at a
        //   periodic refresh, and otherwise pushed through each pivot
        //   in O(m) (it transforms exactly like a tableau column);
        // * `rhs` — a mirror of the basic values, advanced by
        //   `step·β` per breakpoint and pivoted alongside. The real
        //   RHS column in `a` receives the same updates (pivots touch
        //   it as part of their row ops; step advances write it
        //   explicitly) so the handle stays usable after the walk.
        //
        // The refresh bounds round-off accumulation in both vectors.
        const REFRESH: usize = 50;
        let recompute_beta = |tab: &Tableau, beta: &mut Vec<f64>| {
            beta.clear();
            beta.resize(tab.m, 0.0);
            let active: Vec<(f64, usize)> = d_int
                .iter()
                .enumerate()
                .filter(|&(_, &dr)| dr != 0.0)
                .map(|(r, &dr)| (dr, tab.row_unit_col[r]))
                .collect();
            for (i, b) in beta.iter_mut().enumerate() {
                let row = &tab.a[i * stride..(i + 1) * stride];
                *b = active.iter().map(|&(dr, unit)| dr * row[unit]).sum();
            }
        };
        let mirror_rhs = |tab: &Tableau, rhs: &mut Vec<f64>| {
            rhs.clear();
            rhs.extend((0..tab.m).map(|i| tab.a[i * stride + tab.ncols]));
        };
        let mut beta = Vec::new();
        recompute_beta(self, &mut beta);
        let mut rhs = Vec::new();
        mirror_rhs(self, &mut rhs);
        let mut col_c = vec![0.0; self.m];
        // The objective is continuous and piecewise affine along the
        // ray: track its value by continuity (`value += slope·step`),
        // recomputing only the slope (dense, O(m)) after each pivot.
        let slope_of = |tab: &Tableau, beta: &[f64]| -> f64 {
            tab.basis
                .iter()
                .zip(beta)
                .filter(|&(&b, _)| b < nvars)
                .map(|(&b, &be)| costs[b] * be)
                .sum()
        };
        let mut value: f64 = self
            .basis
            .iter()
            .zip(&rhs)
            .filter(|&(&b, _)| b < nvars)
            .map(|(&b, &v)| costs[b] * v)
            .sum();
        let mut slope = slope_of(self, &beta);
        loop {
            // Largest step keeping every basic value non-negative,
            // plus the degenerate-artificial guard: a basic artificial
            // whose value would *rise* along the ray means the basis
            // stops representing the real constraint set.
            let mut step = f64::INFINITY;
            let mut leave: Option<usize> = None;
            for i in 0..self.m {
                let be = beta[i];
                if self.basis[i] >= self.art_start && be > EPS {
                    return Err(LpError::WarmStartLost);
                }
                if be < -EPS {
                    let ratio = (rhs[i] / -be).max(0.0);
                    if ratio < step - EPS
                        || (ratio < step + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        step = ratio;
                        leave = Some(i);
                    }
                }
            }
            let t_break = t + step;
            if leave.is_none() || t_break >= t_max {
                // The basis survives to the end of the requested range
                // (or forever). Advance the RHS to t_max when finite.
                let (t_hi, end) = if leave.is_none() && t_max.is_infinite() {
                    (f64::INFINITY, RayEnd::Unbounded)
                } else {
                    (t_max, RayEnd::Capped)
                };
                if t_max.is_finite() {
                    let dt = t_max - t;
                    for (i, &be) in beta.iter().enumerate() {
                        self.a[i * stride + self.ncols] =
                            (self.a[i * stride + self.ncols] + dt * be).max(0.0);
                    }
                    for (r, &dr) in d_int.iter().enumerate() {
                        self.b_int[r] += dt * dr;
                    }
                }
                push(&mut segments, t, t_hi, value, slope);
                return Ok(RhsRay {
                    segments,
                    end,
                    pivots,
                });
            }
            let r = leave.expect("checked above");
            // Emit the segment ending at this breakpoint and advance
            // the RHS (real column and mirror) to it, clamping the
            // leaving row to exactly 0. Degenerate breakpoints
            // (`step = 0`, common in chains of ties) advance nothing.
            push(&mut segments, t, t_break, value, slope);
            if step > 0.0 {
                for i in 0..self.m {
                    self.a[i * stride + self.ncols] += step * beta[i];
                    rhs[i] += step * beta[i];
                }
                for (row, &dr) in d_int.iter().enumerate() {
                    self.b_int[row] += step * dr;
                }
                value += slope * step;
            }
            self.a[r * stride + self.ncols] = 0.0;
            rhs[r] = 0.0;
            // Dual ratio test on the leaving row (artificials never
            // re-enter). Row access is contiguous — cheap.
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                let arj = self.a[r * stride + j];
                if arj < -EPS {
                    let ratio = self.z[j] / -arj;
                    if enter.is_none_or(|(_, best)| ratio < best - EPS) {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((c, _)) = enter else {
                // No column can absorb the vanishing basic: the ray
                // leaves the feasible region at this breakpoint.
                return Ok(RhsRay {
                    segments,
                    end: RayEnd::Infeasible,
                    pivots,
                });
            };
            // Pivot, capturing the entering column on the way (the
            // elimination reads it anyway), then push β and the RHS
            // mirror through the same row operations.
            self.pivot_capture(r, c, Some(&mut col_c));
            t = t_break;
            pivots += 1;
            if pivots.is_multiple_of(REFRESH) {
                recompute_beta(self, &mut beta);
                mirror_rhs(self, &mut rhs);
            } else {
                let piv_inv = 1.0 / col_c[r];
                let beta_r = beta[r] * piv_inv;
                let rhs_r = rhs[r] * piv_inv;
                for i in 0..self.m {
                    if i != r && col_c[i] != 0.0 {
                        beta[i] -= col_c[i] * beta_r;
                        rhs[i] -= col_c[i] * rhs_r;
                    }
                }
                beta[r] = beta_r;
                rhs[r] = rhs_r;
            }
            slope = slope_of(self, &beta);
            if pivots >= max_pivots {
                return Err(LpError::IterationLimit);
            }
        }
    }

    /// Dual simplex: restore primal feasibility of a dual-feasible
    /// basis (reduced costs ≥ 0) after an RHS perturbation. Usually a
    /// handful of pivots; no-op when the basis is still feasible.
    fn dual_simplex(&mut self, costs: &[f64]) -> Result<(), LpError> {
        let stride = self.ncols + 1;
        let max_iters = 50 * (self.m + self.ncols).max(100);
        for it in 0..max_iters {
            // Leaving row: most negative basic value.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let b = self.a[i * stride + self.ncols];
                if b < -EPS && leave.is_none_or(|(_, lb)| b < lb) {
                    leave = Some((i, b));
                }
            }
            let Some((r, _)) = leave else {
                if it == 0 {
                    // No pivot was needed at all: the basis, and with
                    // it the reduced-cost row, is exactly what the
                    // previous optimization left — still optimal. The
                    // clean-up below would be a provable no-op.
                    return Ok(());
                }
                // Primal feasible again. Reduced costs were kept
                // non-negative by the ratio test, so this basis is
                // optimal; a primal clean-up pass costs nothing when
                // that holds and repairs EPS-level drift when not.
                let mut phase2 = vec![0.0; self.ncols];
                phase2[..costs.len().min(self.ncols)]
                    .copy_from_slice(&costs[..costs.len().min(self.ncols)]);
                self.set_costs(&phase2);
                return self.iterate(self.art_start);
            };
            // Entering column: dual ratio test over eligible columns
            // (artificials never re-enter).
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                let arj = self.a[r * stride + j];
                if arj < -EPS {
                    let ratio = self.z[j] / -arj;
                    if enter.is_none_or(|(_, best)| ratio < best - EPS) {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((c, _)) = enter else {
                // Row demands a negative value no column can supply.
                return Err(LpError::Infeasible);
            };
            self.pivot(r, c);
        }
        Err(LpError::IterationLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn doc_example() {
        let mut p = Problem::new(2);
        p.set_objective(&[(0, -1.0), (1, -1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, -1.0);
        approx(s.x[0] + s.x[1], 1.0);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + 2y  s.t. x + y = 4, x ≥ 1  → x = 4, y = 0? No:
        // cost favors x over y (1 < 2), so x = 4, y = 0, obj = 4.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, 1.0), (1, 2.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 4.0);
        approx(s.x[0], 4.0);
        approx(s.x[1], 0.0);
    }

    #[test]
    fn classic_max_problem() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (Dantzig):
        // optimum (2, 6) with value 36.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, -3.0), (1, -5.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        approx(s.objective, -36.0);
        approx(s.x[0], 2.0);
        approx(s.x[1], 6.0);
    }

    #[test]
    fn detects_infeasible() {
        // x ≤ 1 and x ≥ 2.
        let mut p = Problem::new(1);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min −x with x ≥ 0 free upwards.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, -1.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 0.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // −x ≤ −3  ⇔  x ≥ 3; min x → 3.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], Relation::Le, -3.0);
        let s = p.solve().unwrap();
        approx(s.objective, 3.0);
    }

    #[test]
    fn degenerate_beale_terminates() {
        // Beale's cycling example (classic, cycles under naive Dantzig
        // without anti-cycling): min −0.75x4 + 150x5 − 0.02x6 + 6x7
        // subject to the standard three rows.
        let mut p = Problem::new(4);
        p.set_objective(&[(0, -0.75), (1, 150.0), (2, -0.02), (3, 6.0)]);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, -0.05);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice: phase 1 leaves a degenerate
        // artificial; solution must still be correct.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, 1.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let s = p.solve().unwrap();
        approx(s.objective, 2.0);
        approx(s.x[0], 2.0);
    }

    #[test]
    fn repeated_coefficients_are_summed() {
        // (0,1)+(0,1) = 2x ≤ 4 → x ≤ 2; min −x → −2.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, -1.0)]);
        p.add_constraint(&[(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = p.solve().unwrap();
        approx(s.x[0], 2.0);
    }

    #[test]
    fn warm_rhs_resolve_matches_cold_solves() {
        // min x + 2y s.t. x + y = 4, x ≤ cap — sweep the cap and
        // compare the warm path against cold solves.
        let build = |cap: f64| {
            let mut p = Problem::new(2);
            p.set_objective(&[(0, 1.0), (1, 2.0)]);
            p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
            p.add_constraint(&[(0, 1.0)], Relation::Le, cap);
            p
        };
        let (first, mut prep) = build(4.0).solve_prepared().unwrap();
        approx(first.objective, 4.0);
        for cap in [3.0, 2.0, 1.0, 0.5, 2.5, 4.0, 6.0] {
            let warm = prep.resolve_rhs(&[(1, cap)]).unwrap();
            let cold = build(cap).solve().unwrap();
            approx(warm.objective, cold.objective);
            // x is capped, the rest shifts to y.
            approx(warm.x[0], cap.min(4.0));
            approx(warm.x[1], 4.0 - cap.min(4.0));
        }
    }

    #[test]
    fn warm_resolve_moves_eq_rows_weight_delta_shape() {
        // The Vdd-Hopping work-completion rows are equalities whose
        // RHS is the task cost w_i: a *weight edit* is an Eq-row RHS
        // move. Shape: min Σ s_j^α x_j  s.t.  Σ s_j x_j = w,
        // Σ x_j ≤ D — two modes {1, 2}, α = 3, so mixing is optimal
        // for 1 < w/D < 2. Sweep w warm and compare against cold.
        let build = |w: f64, d: f64| {
            let mut p = Problem::new(2);
            p.set_objective(&[(0, 1.0), (1, 8.0)]); // 1³, 2³
            p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, w);
            p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, d);
            p
        };
        let d = 2.0;
        let (first, mut prep) = build(3.0, d).solve_prepared().unwrap();
        // w = 3, D = 2: x_lo + 2 x_hi = 3, x_lo + x_hi ≤ 2 → one unit
        // at each mode, energy 1 + 8 = 9.
        approx(first.objective, 9.0);
        for w in [3.5, 2.5, 3.0, 2.2, 3.9] {
            let warm = prep.resolve_rhs(&[(0, w)]).unwrap();
            let cold = build(w, d).solve().unwrap();
            approx(warm.objective, cold.objective);
        }
        // Pushing the weight beyond top-speed capacity (w > 2D) must
        // surface as infeasibility, not a stale answer.
        assert_eq!(
            prep.resolve_rhs(&[(0, 4.5)]).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn warm_resolve_detects_infeasible_rhs() {
        // x ≥ 2 with x ≤ cap: cap below 2 is infeasible.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        let (sol, mut prep) = p.solve_prepared().unwrap();
        approx(sol.x[0], 2.0);
        assert_eq!(
            prep.resolve_rhs(&[(1, 1.0)]).unwrap_err(),
            LpError::Infeasible
        );
        // Note: after an infeasible perturbation the handle is spent;
        // sweeps fall back to a cold solve (see `vdd::solve_lp_sweep`).
    }

    #[test]
    fn warm_resolve_handles_flipped_rows() {
        // −x ≤ −lo ⇔ x ≥ lo (build-time sign flip); sweep lo.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], Relation::Le, -3.0);
        let (sol, mut prep) = p.solve_prepared().unwrap();
        approx(sol.objective, 3.0);
        for lo in [4.0, 2.0, 7.5] {
            let warm = prep.resolve_rhs(&[(0, -lo)]).unwrap();
            approx(warm.objective, lo);
        }
    }

    #[test]
    fn warm_resolve_rejects_reactivated_artificial() {
        // x + y = 2 stated twice: phase 1 leaves one redundant row's
        // artificial basic at level 0 (degenerate). Moving only one
        // copy's RHS makes the rows contradictory; the RHS update
        // pushes that artificial positive, which the warm path must
        // refuse to present as a solution.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, 1.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let (sol, mut prep) = p.solve_prepared().unwrap();
        approx(sol.objective, 2.0);
        let err = prep.resolve_rhs(&[(1, 3.0)]).unwrap_err();
        assert!(
            matches!(err, LpError::WarmStartLost | LpError::Infeasible),
            "contradictory rows must not yield Ok: {err:?}"
        );
        // Moving BOTH rows consistently keeps the warm path usable —
        // unless this degenerate basis cannot re-optimize, in which
        // case the error still routes callers to a cold solve.
        let mut p2 = Problem::new(2);
        p2.set_objective(&[(0, 1.0), (1, 3.0)]);
        p2.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p2.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        let (_, mut prep2) = p2.solve_prepared().unwrap();
        match prep2.resolve_rhs(&[(0, 3.0), (1, 3.0)]) {
            Ok(warm) => approx(warm.objective, 3.0),
            Err(e) => assert!(matches!(
                e,
                LpError::WarmStartLost | LpError::IterationLimit
            )),
        }
    }

    #[test]
    fn parametric_ray_matches_pointwise_resolves() {
        // min x + 2y s.t. x + y = 4, x ≤ cap: sweep cap = 1 + t.
        // For cap ≤ 4 the optimum is cap·1 + (4−cap)·2 = 8 − cap
        // (slope −1); beyond cap = 4 the cap row goes slack and the
        // optimum is flat at 4 (slope 0). One breakpoint at t = 3.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, 1.0), (1, 2.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        let (sol, mut prep) = p.solve_prepared().unwrap();
        approx(sol.objective, 7.0);
        let ray = prep.parametric_rhs(&[(1, 1.0)], f64::INFINITY).unwrap();
        assert_eq!(ray.end, RayEnd::Unbounded);
        assert_eq!(ray.segments.len(), 2, "{:?}", ray.segments);
        approx(ray.segments[0].t_lo, 0.0);
        approx(ray.segments[0].t_hi, 3.0);
        approx(ray.segments[0].value_lo, 7.0);
        approx(ray.segments[0].slope, -1.0);
        approx(ray.segments[1].t_lo, 3.0);
        assert_eq!(ray.segments[1].t_hi, f64::INFINITY);
        approx(ray.segments[1].value_lo, 4.0);
        approx(ray.segments[1].slope, 0.0);
        // Pointwise agreement with independent cold solves.
        for t in [0.0, 0.5, 1.5, 2.999, 3.0, 5.0, 40.0] {
            let mut q = Problem::new(2);
            q.set_objective(&[(0, 1.0), (1, 2.0)]);
            q.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
            q.add_constraint(&[(0, 1.0)], Relation::Le, 1.0 + t);
            approx(ray.value_at(t).unwrap(), q.solve().unwrap().objective);
        }
    }

    #[test]
    fn parametric_ray_detects_infeasible_end() {
        // x ≥ 2, x ≤ 5 − t: infeasible once 5 − t < 2, i.e. t > 3.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 5.0);
        let (_, mut prep) = p.solve_prepared().unwrap();
        let ray = prep.parametric_rhs(&[(1, -1.0)], f64::INFINITY).unwrap();
        assert_eq!(ray.end, RayEnd::Infeasible);
        let last = ray.segments.last().unwrap();
        approx(last.t_hi, 3.0);
        // The optimum is flat at 2 until the cap collides with the floor.
        approx(ray.value_at(0.0).unwrap(), 2.0);
        approx(ray.value_at(3.0).unwrap(), 2.0);
    }

    #[test]
    fn parametric_ray_capped_leaves_handle_usable() {
        // Same LP as the pointwise test, capped at t = 1.5 (inside the
        // first segment): the handle must end positioned at t_max and
        // keep answering resolve_rhs correctly.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, 1.0), (1, 2.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        let (_, mut prep) = p.solve_prepared().unwrap();
        let ray = prep.parametric_rhs(&[(1, 1.0)], 1.5).unwrap();
        assert_eq!(ray.end, RayEnd::Capped);
        assert_eq!(ray.segments.len(), 1);
        approx(ray.segments[0].t_hi, 1.5);
        // Positioned at cap = 2.5 now; a further warm re-solve works.
        approx(prep.solution().objective, 8.0 - 2.5);
        let warm = prep.resolve_rhs(&[(1, 4.0)]).unwrap();
        approx(warm.objective, 4.0);
    }

    #[test]
    fn parametric_ray_multi_row_direction() {
        // Two independent caps moving together: min x + y with
        // x ≥ 3 − t? Use: min −x − y, x ≤ 1 + t, y ≤ 2 + 2t → optimum
        // −(3 + 3t), single segment, slope −3.
        let mut p = Problem::new(2);
        p.set_objective(&[(0, -1.0), (1, -1.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(1, 1.0)], Relation::Le, 2.0);
        let (sol, mut prep) = p.solve_prepared().unwrap();
        approx(sol.objective, -3.0);
        let ray = prep.parametric_rhs(&[(0, 1.0), (1, 2.0)], 10.0).unwrap();
        assert_eq!(ray.end, RayEnd::Capped);
        assert_eq!(ray.segments.len(), 1);
        approx(ray.segments[0].slope, -3.0);
        approx(ray.value_at(10.0).unwrap(), -33.0);
    }

    #[test]
    fn parametric_ray_on_flipped_row() {
        // −x ≤ −3 ⇔ x ≥ 3; raise the floor parametrically: min x with
        // floor 3 + t → optimum 3 + t, slope +1.
        let mut p = Problem::new(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], Relation::Le, -3.0);
        let (_, mut prep) = p.solve_prepared().unwrap();
        let ray = prep.parametric_rhs(&[(0, -1.0)], 4.0).unwrap();
        assert_eq!(ray.segments.len(), 1);
        approx(ray.segments[0].slope, 1.0);
        approx(ray.value_at(4.0).unwrap(), 7.0);
    }

    #[test]
    fn prepared_solution_is_stable() {
        let mut p = Problem::new(2);
        p.set_objective(&[(0, -3.0), (1, -5.0)]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let (sol, prep) = p.solve_prepared().unwrap();
        approx(sol.objective, -36.0);
        approx(prep.solution().objective, -36.0);
    }

    #[test]
    fn larger_transportation_like_lp() {
        // min Σ c_ij x_ij, supplies 2×, demands 3×.
        // Supplies: 20, 30. Demands: 10, 25, 15.
        let c = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let mut p = Problem::new(6);
        let idx = |i: usize, j: usize| i * 3 + j;
        let mut obj = Vec::new();
        for (i, row) in c.iter().enumerate() {
            for (j, &cost) in row.iter().enumerate() {
                obj.push((idx(i, j), cost));
            }
        }
        p.set_objective(&obj);
        for i in 0..2 {
            let coeffs: Vec<(usize, f64)> = (0..3).map(|j| (idx(i, j), 1.0)).collect();
            p.add_constraint(&coeffs, Relation::Le, [20.0, 30.0][i]);
        }
        for j in 0..3 {
            let coeffs: Vec<(usize, f64)> = (0..2).map(|i| (idx(i, j), 1.0)).collect();
            p.add_constraint(&coeffs, Relation::Ge, [10.0, 25.0, 15.0][j]);
        }
        let s = p.solve().unwrap();
        // Feasibility of the reported solution.
        for j in 0..3 {
            let got: f64 = (0..2).map(|i| s.x[idx(i, j)]).sum();
            assert!(got >= [10.0, 25.0, 15.0][j] - 1e-6);
        }
        // Known optimum: route as much as possible through cheap arcs.
        // x00=5? Verified optimum value is 470:
        // x01=20 (cost 120), x10=10 (90), x11=5 (60), x12=15 (195),
        // total 465? Let's just check against a brute-force-ish bound:
        // the LP value must match cᵀx and be ≤ any feasible candidate.
        let cand = 8.0 * 10.0 + 6.0 * 10.0 + 12.0 * 15.0 + 13.0 * 15.0;
        assert!(s.objective <= cand + 1e-6);
        let recomputed: f64 = (0..6).map(|k| s.x[k] * obj[k].1).sum();
        approx(s.objective, recomputed);
    }
}
