//! Property tests for the simplex: solutions are feasible and no
//! worse than any feasible point we can construct.

use lp::{Problem, Relation};
use proptest::prelude::*;

/// Build a random LP that is feasible **by construction**: draw a
/// witness point `x*` ≥ 0 and make every `≤` row satisfied at `x*`
/// with non-negative slack. Returns `(problem, c, witness)`.
fn feasible_lp(nvars: usize, nrows: usize, seed_data: &[f64]) -> (Problem, Vec<f64>, Vec<f64>) {
    let mut it = seed_data.iter().copied().cycle();
    let mut next = move || it.next().unwrap();
    let witness: Vec<f64> = (0..nvars).map(|_| next().abs() * 3.0).collect();
    let costs: Vec<f64> = (0..nvars).map(|_| next() * 2.0).collect();
    let mut p = Problem::new(nvars);
    let obj: Vec<(usize, f64)> = costs.iter().copied().enumerate().collect();
    p.set_objective(&obj);
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let coeffs: Vec<(usize, f64)> = (0..nvars).map(|j| (j, next() * 2.0)).collect();
        let at_witness: f64 = coeffs.iter().map(|&(j, a)| a * witness[j]).sum();
        let slack = next().abs();
        p.add_constraint(&coeffs, Relation::Le, at_witness + slack);
        rows.push((coeffs, at_witness + slack));
    }
    // Keep the problem bounded: x_j ≤ witness_j + 10 for every var.
    for (j, &w) in witness.iter().enumerate() {
        p.add_constraint(&[(j, 1.0)], Relation::Le, w + 10.0);
    }
    (p, costs, witness)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplex_beats_witness_and_is_feasible(
        data in prop::collection::vec(-1.0f64..1.0, 24..64),
        nvars in 2usize..6,
        nrows in 1usize..6,
    ) {
        let (p, costs, witness) = feasible_lp(nvars, nrows, &data);
        let sol = p.solve().expect("constructed LP is feasible and bounded");
        // Objective must not exceed the witness's objective.
        let witness_obj: f64 = costs.iter().zip(&witness).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective <= witness_obj + 1e-6,
            "simplex {} worse than witness {}", sol.objective, witness_obj);
        // Non-negativity.
        for &x in &sol.x {
            prop_assert!(x >= -1e-9);
        }
        // Reported objective is consistent with the reported point.
        let recomputed: f64 = costs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
        prop_assert!((sol.objective - recomputed).abs() <= 1e-6 * (1.0 + recomputed.abs()));
    }

    /// Scaling the objective scales the optimum (and the argmin can
    /// stay put): sanity for the reduced-cost bookkeeping.
    #[test]
    fn objective_scaling(data in prop::collection::vec(-1.0f64..1.0, 24..48)) {
        let (p, costs, _) = feasible_lp(3, 3, &data);
        let s1 = p.solve().unwrap();
        let mut p2 = p.clone();
        let scaled: Vec<(usize, f64)> =
            costs.iter().map(|&c| c * 2.0).enumerate().collect();
        p2.set_objective(&scaled);
        let s2 = p2.solve().unwrap();
        prop_assert!((s2.objective - 2.0 * s1.objective).abs()
            <= 1e-6 * (1.0 + s1.objective.abs() * 2.0),
            "{} vs {}", s2.objective, 2.0 * s1.objective);
    }
}
