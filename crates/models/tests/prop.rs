//! Property tests for schedules and energy accounting.

use models::{DiscreteModes, EnergyModel, PowerLaw, Schedule, SpeedProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::generators;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ASAP schedules built from admissible speeds always validate at
    /// their own makespan.
    #[test]
    fn asap_validates_at_makespan(
        ws in prop::collection::vec(0.2f64..5.0, 1..10),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = {
            let n = ws.len();
            let mut edges = Vec::new();
            use rand::Rng;
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.3) {
                        edges.push((i, j));
                    }
                }
            }
            taskgraph::TaskGraph::new(ws.clone(), &edges).unwrap()
        };
        use rand::Rng;
        let speeds: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(0.5f64..2.0)).collect();
        let sched = Schedule::asap_from_speeds(&g, &speeds);
        let mk = sched.makespan(&g);
        sched
            .validate(&g, &EnergyModel::continuous(2.0), mk)
            .expect("ASAP schedule must be feasible at its makespan");
        // And must fail strictly below it.
        prop_assert!(sched.validate(&g, &EnergyModel::continuous(2.0), mk * 0.9).is_err());
    }

    /// Energy is (α−1)-homogeneous in a uniform speed scale.
    #[test]
    fn energy_homogeneity(
        ws in prop::collection::vec(0.2f64..5.0, 1..8),
        lambda in 1.1f64..3.0,
        alpha in 1.5f64..4.0,
    ) {
        let g = generators::chain(&ws);
        let p = PowerLaw::new(alpha);
        let s1 = vec![1.0; g.n()];
        let s2 = vec![lambda; g.n()];
        let e1 = Schedule::asap_from_speeds(&g, &s1).energy(&g, p);
        let e2 = Schedule::asap_from_speeds(&g, &s2).energy(&g, p);
        let expect = e1 * lambda.powf(alpha - 1.0);
        prop_assert!((e2 - expect).abs() <= 1e-9 * expect.max(1.0));
    }

    /// A Vdd profile's mean speed lies between its slowest and fastest
    /// pieces, and its energy is at least the constant-mean-speed
    /// energy (convexity of s^α).
    #[test]
    fn profile_mean_speed_and_convexity(
        s_lo in 0.5f64..1.5,
        gap in 0.1f64..2.0,
        t_lo in 0.1f64..3.0,
        t_hi in 0.1f64..3.0,
    ) {
        let s_hi = s_lo + gap;
        let profile = SpeedProfile::Pieces(vec![(s_lo, t_lo), (s_hi, t_hi)]);
        let w = profile.work_done(0.0);
        let mean = profile.mean_speed(w);
        prop_assert!(mean >= s_lo - 1e-9 && mean <= s_hi + 1e-9);
        let p = PowerLaw::CUBIC;
        let e_pieces = profile.energy(w, p);
        let e_mean = p.energy_at_speed(w, mean);
        prop_assert!(e_pieces >= e_mean * (1.0 - 1e-9),
            "mixing cannot beat the constant mean speed: {e_pieces} < {e_mean}");
    }

    /// Mode-set rounding brackets: round_down ≤ s ≤ round_up and both
    /// are modes.
    #[test]
    fn discrete_rounding_brackets(
        speeds in prop::collection::vec(0.1f64..5.0, 1..8),
        query in 0.05f64..6.0,
    ) {
        let m = DiscreteModes::new(&speeds).unwrap();
        if let Some(up) = m.round_up(query) {
            prop_assert!(up >= query - 1e-9);
            prop_assert!(m.contains(up));
        } else {
            prop_assert!(query > m.s_max());
        }
        if let Some(down) = m.round_down(query) {
            prop_assert!(down <= query + 1e-9);
            prop_assert!(m.contains(down));
        } else {
            prop_assert!(query < m.s_min());
        }
    }
}
