//! The four energy models as one dispatchable type.

use crate::modes::{DiscreteModes, IncrementalModes};

/// An energy model = the set of admissible speed values plus whether
/// the speed may change during a task (paper §1, "Energy models").
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyModel {
    /// **Continuous**: arbitrary speeds in `(0, s_max]`
    /// (`s_max = None` means unbounded — the `s_max = +∞` assumption
    /// of Theorem 2's series–parallel case). "Unrealistic but
    /// theoretically appealing."
    Continuous {
        /// Maximum speed, or `None` for unbounded.
        s_max: Option<f64>,
    },
    /// **Discrete**: a fixed set of modes, one constant speed per task.
    Discrete(DiscreteModes),
    /// **Vdd-Hopping**: the same mode set as Discrete but the speed
    /// may change during a task, so any intermediate *average* speed
    /// can be simulated by mixing modes.
    VddHopping(DiscreteModes),
    /// **Incremental**: one constant speed per task, chosen from the
    /// regular grid `s_min + i·δ`.
    Incremental(IncrementalModes),
}

impl EnergyModel {
    /// Unbounded continuous speeds.
    pub fn continuous_unbounded() -> EnergyModel {
        EnergyModel::Continuous { s_max: None }
    }

    /// Continuous speeds capped at `s_max`.
    pub fn continuous(s_max: f64) -> EnergyModel {
        assert!(s_max.is_finite() && s_max > 0.0);
        EnergyModel::Continuous { s_max: Some(s_max) }
    }

    /// The fastest admissible speed (`None` = unbounded).
    pub fn top_speed(&self) -> Option<f64> {
        match self {
            EnergyModel::Continuous { s_max } => *s_max,
            EnergyModel::Discrete(m) | EnergyModel::VddHopping(m) => Some(m.s_max()),
            EnergyModel::Incremental(m) => Some(m.top_mode()),
        }
    }

    /// The slowest admissible nonzero speed (`None` for Continuous,
    /// which admits arbitrarily slow speeds).
    pub fn bottom_speed(&self) -> Option<f64> {
        match self {
            EnergyModel::Continuous { .. } => None,
            EnergyModel::Discrete(m) | EnergyModel::VddHopping(m) => Some(m.s_min()),
            EnergyModel::Incremental(m) => Some(m.s_min()),
        }
    }

    /// Whether a *constant* task speed `s` is admissible under this
    /// model. (For Vdd-Hopping, any speed in `[s_1, s_m]` is reachable
    /// as an average by mixing modes.)
    pub fn admits_constant_speed(&self, s: f64) -> bool {
        if !(s.is_finite() && s > 0.0) {
            return false;
        }
        match self {
            EnergyModel::Continuous { s_max } => s_max.is_none_or(|m| s <= m * (1.0 + 1e-9)),
            EnergyModel::Discrete(m) => m.contains(s),
            EnergyModel::VddHopping(m) => {
                s >= m.s_min() * (1.0 - 1e-9) && s <= m.s_max() * (1.0 + 1e-9)
            }
            EnergyModel::Incremental(m) => {
                if s < m.s_min() * (1.0 - 1e-9) || s > m.top_mode() * (1.0 + 1e-9) {
                    return false;
                }
                let i = (s - m.s_min()) / m.delta();
                (i - i.round()).abs() <= 1e-6
            }
        }
    }

    /// Whether speeds may change during the execution of a task.
    pub fn allows_mid_task_switch(&self) -> bool {
        matches!(
            self,
            EnergyModel::Continuous { .. } | EnergyModel::VddHopping(_)
        )
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            EnergyModel::Continuous { .. } => "Continuous",
            EnergyModel::Discrete(_) => "Discrete",
            EnergyModel::VddHopping(_) => "Vdd-Hopping",
            EnergyModel::Incremental(_) => "Incremental",
        }
    }
}

impl std::fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnergyModel::Continuous { s_max: None } => write!(f, "Continuous(s ≤ ∞)"),
            EnergyModel::Continuous { s_max: Some(m) } => write!(f, "Continuous(s ≤ {m})"),
            EnergyModel::Discrete(m) => write!(f, "Discrete{:?}", m.speeds()),
            EnergyModel::VddHopping(m) => write!(f, "Vdd-Hopping{:?}", m.speeds()),
            EnergyModel::Incremental(m) => write!(
                f,
                "Incremental[{}..{} step {}]",
                m.s_min(),
                m.s_max(),
                m.delta()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_speed_admission() {
        let unb = EnergyModel::continuous_unbounded();
        assert!(unb.admits_constant_speed(1e9));
        assert!(!unb.admits_constant_speed(0.0));
        assert!(!unb.admits_constant_speed(f64::NAN));
        let cap = EnergyModel::continuous(2.0);
        assert!(cap.admits_constant_speed(2.0));
        assert!(!cap.admits_constant_speed(2.1));
        assert_eq!(cap.top_speed(), Some(2.0));
        assert_eq!(cap.bottom_speed(), None);
    }

    #[test]
    fn discrete_vs_vdd_admission() {
        let modes = DiscreteModes::new(&[1.0, 2.0, 4.0]).unwrap();
        let disc = EnergyModel::Discrete(modes.clone());
        let vdd = EnergyModel::VddHopping(modes);
        // 3.0 is not a mode: inadmissible as a constant Discrete speed,
        // but reachable on average under Vdd-Hopping.
        assert!(!disc.admits_constant_speed(3.0));
        assert!(vdd.admits_constant_speed(3.0));
        assert!(disc.admits_constant_speed(2.0));
        assert!(!vdd.admits_constant_speed(4.5));
        assert!(!disc.allows_mid_task_switch());
        assert!(vdd.allows_mid_task_switch());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            EnergyModel::continuous(2.0).to_string(),
            "Continuous(s ≤ 2)"
        );
        assert!(EnergyModel::continuous_unbounded()
            .to_string()
            .contains('∞'));
        let m = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        assert!(EnergyModel::Discrete(m.clone())
            .to_string()
            .starts_with("Discrete"));
        assert!(EnergyModel::VddHopping(m).to_string().contains("Vdd"));
        let inc = IncrementalModes::new(1.0, 2.0, 0.5).unwrap();
        assert_eq!(
            EnergyModel::Incremental(inc).to_string(),
            "Incremental[1..2 step 0.5]"
        );
    }

    #[test]
    fn incremental_admission_is_grid_only() {
        let inc = EnergyModel::Incremental(IncrementalModes::new(1.0, 2.0, 0.25).unwrap());
        assert!(inc.admits_constant_speed(1.25));
        assert!(!inc.admits_constant_speed(1.3));
        assert!(!inc.admits_constant_speed(0.75));
        assert_eq!(inc.top_speed(), Some(2.0));
        assert_eq!(inc.bottom_speed(), Some(1.0));
        assert_eq!(inc.name(), "Incremental");
    }
}
