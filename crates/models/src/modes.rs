//! Admissible speed sets for the Discrete, Incremental and Vdd-Hopping
//! models.

use std::fmt;

/// Errors building a mode set.
#[derive(Debug, Clone, PartialEq)]
pub enum ModeError {
    /// Fewer than one speed, or a non-positive / non-finite speed.
    BadSpeed(f64),
    /// No speeds at all.
    Empty,
    /// Incremental parameters out of range (`δ ≤ 0`, `s_min ≤ 0`, or
    /// `s_max < s_min`).
    BadIncrement { s_min: f64, s_max: f64, delta: f64 },
}

impl fmt::Display for ModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeError::BadSpeed(s) => write!(f, "invalid speed {s}"),
            ModeError::Empty => write!(f, "mode set must contain at least one speed"),
            ModeError::BadIncrement {
                s_min,
                s_max,
                delta,
            } => write!(
                f,
                "invalid incremental parameters: s_min={s_min}, s_max={s_max}, δ={delta}"
            ),
        }
    }
}

impl std::error::Error for ModeError {}

/// The **Discrete** model's speed set: arbitrary modes
/// `s_1 < s_2 < … < s_m` ("no assumption on the range and distribution
/// of these modes"). A processor cannot change speed during a task.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteModes {
    speeds: Vec<f64>, // sorted ascending, strictly positive, deduplicated
}

impl DiscreteModes {
    /// Build from an arbitrary list of speeds (sorted and deduplicated
    /// internally).
    pub fn new(speeds: &[f64]) -> Result<DiscreteModes, ModeError> {
        if speeds.is_empty() {
            return Err(ModeError::Empty);
        }
        for &s in speeds {
            if !(s.is_finite() && s > 0.0) {
                return Err(ModeError::BadSpeed(s));
            }
        }
        let mut v = speeds.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-12 * b.abs());
        Ok(DiscreteModes { speeds: v })
    }

    /// Number of modes `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.speeds.len()
    }

    /// The sorted speeds `s_1 < … < s_m`.
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Slowest mode `s_1`.
    #[inline]
    pub fn s_min(&self) -> f64 {
        self.speeds[0]
    }

    /// Fastest mode `s_m`.
    #[inline]
    pub fn s_max(&self) -> f64 {
        *self.speeds.last().unwrap()
    }

    /// Largest gap between consecutive modes:
    /// `α = max_{1 ≤ i < m} (s_{i+1} − s_i)` (the constant in
    /// Proposition 1(b)). Zero for a single mode.
    pub fn max_gap(&self) -> f64 {
        self.speeds
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max)
    }

    /// Smallest mode `≥ s`, or `None` when `s > s_m` (the rounding-up
    /// step of the approximation algorithms).
    pub fn round_up(&self, s: f64) -> Option<f64> {
        let i = self.speeds.partition_point(|&x| x < s - 1e-15);
        self.speeds.get(i).copied()
    }

    /// Largest mode `≤ s`, or `None` when `s < s_1`.
    pub fn round_down(&self, s: f64) -> Option<f64> {
        let i = self.speeds.partition_point(|&x| x <= s + 1e-15);
        i.checked_sub(1).map(|i| self.speeds[i])
    }

    /// The two consecutive modes bracketing `s`
    /// (`s_j ≤ s ≤ s_{j+1}`), used by the Vdd-Hopping mixing rule.
    /// Returns `(s, s)` degenerate brackets when `s` is itself a mode,
    /// and `None` when `s` is outside `[s_1, s_m]`.
    pub fn bracket(&self, s: f64) -> Option<(f64, f64)> {
        let lo = self.round_down(s)?;
        let hi = self.round_up(s)?;
        Some((lo, hi))
    }

    /// Whether `s` equals one of the modes (within tolerance).
    pub fn contains(&self, s: f64) -> bool {
        self.speeds
            .iter()
            .any(|&x| (x - s).abs() <= 1e-9 * (1.0 + x.abs()))
    }
}

/// The **Incremental** model's speed set: a regular grid
/// `s = s_min + i·δ` for integer `0 ≤ i ≤ (s_max − s_min)/δ`
/// ("the modern counterpart of a potentiometer knob").
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalModes {
    s_min: f64,
    s_max: f64,
    delta: f64,
    count: usize, // number of modes = ⌊(s_max − s_min)/δ⌋ + 1
}

impl IncrementalModes {
    /// Build the grid. The effective maximum is
    /// `s_min + ⌊(s_max − s_min)/δ⌋·δ ≤ s_max` (the paper constrains
    /// `i ≤ (s_max − s_min)/δ` to integers).
    pub fn new(s_min: f64, s_max: f64, delta: f64) -> Result<IncrementalModes, ModeError> {
        let well_formed = s_min.is_finite()
            && s_min > 0.0
            && s_max.is_finite()
            && s_max >= s_min
            && delta.is_finite()
            && delta > 0.0;
        if !well_formed {
            return Err(ModeError::BadIncrement {
                s_min,
                s_max,
                delta,
            });
        }
        // Robust floor: tolerate s_max − s_min being an almost-exact
        // multiple of δ.
        let steps = ((s_max - s_min) / delta + 1e-9).floor() as usize;
        Ok(IncrementalModes {
            s_min,
            s_max,
            delta,
            count: steps + 1,
        })
    }

    /// Minimum speed `s_min` (also the slowest mode).
    #[inline]
    pub fn s_min(&self) -> f64 {
        self.s_min
    }

    /// The declared upper bound `s_max` (the fastest mode may be
    /// slightly below it when `s_max − s_min` is not a multiple of δ).
    #[inline]
    pub fn s_max(&self) -> f64 {
        self.s_max
    }

    /// The speed increment δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of modes.
    #[inline]
    pub fn m(&self) -> usize {
        self.count
    }

    /// The `i`-th mode `s_min + i·δ`.
    #[inline]
    pub fn mode(&self, i: usize) -> f64 {
        debug_assert!(i < self.count);
        self.s_min + i as f64 * self.delta
    }

    /// Fastest mode on the grid.
    #[inline]
    pub fn top_mode(&self) -> f64 {
        self.mode(self.count - 1)
    }

    /// Smallest grid mode `≥ s` (`None` when `s` exceeds the top
    /// mode). O(1) thanks to the regular spacing.
    pub fn round_up(&self, s: f64) -> Option<f64> {
        if s <= self.s_min {
            return Some(self.s_min);
        }
        let i = ((s - self.s_min) / self.delta - 1e-9).ceil() as usize;
        (i < self.count).then(|| self.mode(i))
    }

    /// Largest grid mode `≤ s` (`None` when `s < s_min`).
    pub fn round_down(&self, s: f64) -> Option<f64> {
        if s < self.s_min - 1e-15 {
            return None;
        }
        let i = (((s - self.s_min) / self.delta) + 1e-9).floor() as usize;
        Some(self.mode(i.min(self.count - 1)))
    }

    /// Materialize the grid as a [`DiscreteModes`] set (the Incremental
    /// model *is* a Discrete model with regular spacing; Theorem 4's
    /// NP-completeness transfers through this embedding).
    pub fn to_discrete(&self) -> DiscreteModes {
        let speeds: Vec<f64> = (0..self.count).map(|i| self.mode(i)).collect();
        DiscreteModes::new(&speeds).expect("grid speeds are valid")
    }

    /// The approximation-ratio factor of Theorem 5 / Proposition 1(a):
    /// `(1 + δ/s_min)²` for `α = 3` — in general
    /// `(1 + δ/s_min)^{α−1}`.
    pub fn rounding_ratio(&self, alpha: f64) -> f64 {
        (1.0 + self.delta / self.s_min).powf(alpha - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_sorts_and_dedups() {
        let m = DiscreteModes::new(&[2.0, 1.0, 2.0, 3.5]).unwrap();
        assert_eq!(m.speeds(), &[1.0, 2.0, 3.5]);
        assert_eq!(m.m(), 3);
        assert_eq!(m.s_min(), 1.0);
        assert_eq!(m.s_max(), 3.5);
        assert!((m.max_gap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn discrete_rejects_bad_input() {
        assert_eq!(DiscreteModes::new(&[]), Err(ModeError::Empty));
        assert!(matches!(
            DiscreteModes::new(&[1.0, -2.0]),
            Err(ModeError::BadSpeed(_))
        ));
        assert!(matches!(
            DiscreteModes::new(&[f64::NAN]),
            Err(ModeError::BadSpeed(_))
        ));
    }

    #[test]
    fn rounding_and_brackets() {
        let m = DiscreteModes::new(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(m.round_up(1.5), Some(2.0));
        assert_eq!(m.round_up(2.0), Some(2.0));
        assert_eq!(m.round_up(4.1), None);
        assert_eq!(m.round_down(1.5), Some(1.0));
        assert_eq!(m.round_down(0.5), None);
        assert_eq!(m.bracket(3.0), Some((2.0, 4.0)));
        assert_eq!(m.bracket(2.0), Some((2.0, 2.0)));
        assert_eq!(m.bracket(0.1), None);
        assert!(m.contains(2.0));
        assert!(!m.contains(3.0));
    }

    #[test]
    fn incremental_grid() {
        let m = IncrementalModes::new(1.0, 2.0, 0.25).unwrap();
        assert_eq!(m.m(), 5);
        assert_eq!(m.mode(0), 1.0);
        assert!((m.top_mode() - 2.0).abs() < 1e-12);
        assert_eq!(m.round_up(1.1), Some(1.25));
        assert_eq!(m.round_up(0.2), Some(1.0));
        assert_eq!(m.round_up(2.01), None);
        assert_eq!(m.round_down(1.1), Some(1.0));
        assert_eq!(m.round_down(0.9), None);
        // Exact grid points round to themselves in both directions.
        assert_eq!(m.round_up(1.25), Some(1.25));
        assert_eq!(m.round_down(1.25), Some(1.25));
    }

    #[test]
    fn incremental_truncates_to_multiple() {
        // (2.0 − 1.0)/0.3 = 3.33 → modes at 1.0, 1.3, 1.6, 1.9.
        let m = IncrementalModes::new(1.0, 2.0, 0.3).unwrap();
        assert_eq!(m.m(), 4);
        assert!((m.top_mode() - 1.9).abs() < 1e-12);
        assert_eq!(m.round_up(1.95), None);
    }

    #[test]
    fn incremental_to_discrete_roundtrip() {
        let inc = IncrementalModes::new(0.5, 1.5, 0.5).unwrap();
        let d = inc.to_discrete();
        assert_eq!(d.speeds(), &[0.5, 1.0, 1.5]);
        assert!((d.max_gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rounding_ratio_matches_theorem5() {
        let inc = IncrementalModes::new(1.0, 2.0, 0.1).unwrap();
        // (1 + 0.1/1.0)² = 1.21 for the paper's α = 3.
        assert!((inc.rounding_ratio(3.0) - 1.21).abs() < 1e-12);
    }

    #[test]
    fn incremental_rejects_bad_params() {
        assert!(IncrementalModes::new(0.0, 1.0, 0.1).is_err());
        assert!(IncrementalModes::new(1.0, 0.5, 0.1).is_err());
        assert!(IncrementalModes::new(1.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn single_mode_sets() {
        let d = DiscreteModes::new(&[2.0]).unwrap();
        assert_eq!(d.max_gap(), 0.0);
        assert_eq!(d.bracket(2.0), Some((2.0, 2.0)));
        let i = IncrementalModes::new(2.0, 2.0, 0.5).unwrap();
        assert_eq!(i.m(), 1);
    }
}
