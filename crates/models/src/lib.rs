//! # models — energy models, mode sets, and schedules
//!
//! Everything the paper's §1 "Energy models" paragraph defines, as
//! data:
//!
//! * [`PowerLaw`] — the dynamic power function `P(s) = s^α` (the paper
//!   uses `α = 3`: a processor at speed `s` dissipates `s³` watts and
//!   consumes `s³·t` joules over `t` time units);
//! * [`DiscreteModes`] / [`IncrementalModes`] — the admissible speed
//!   sets of the **Discrete** and **Incremental** models;
//! * [`EnergyModel`] — the four models (Continuous, Discrete,
//!   Vdd-Hopping, Incremental) as one dispatchable type;
//! * [`Schedule`] / [`SpeedProfile`] — a complete solution (start time
//!   and speed profile per task) with feasibility checking
//!   ([`Schedule::validate`]) and energy accounting
//!   ([`Schedule::energy`]).

pub mod model;
pub mod modes;
pub mod power;
pub mod schedule;

pub use model::EnergyModel;
pub use modes::{DiscreteModes, IncrementalModes, ModeError};
pub use power::{static_energy, PowerLaw};
pub use schedule::{Schedule, ScheduleError, SpeedProfile};
