//! Complete solutions: per-task start times and speed profiles, with
//! energy accounting and full feasibility checking.

use crate::model::EnergyModel;
use crate::power::PowerLaw;
use std::fmt;
use taskgraph::{analysis, TaskGraph, TaskId};

/// Relative tolerance used by all feasibility checks.
pub const TOL: f64 = 1e-6;

/// How a task's speed evolves over its execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedProfile {
    /// One constant speed for the whole task (all models; the only
    /// admissible profile under Discrete and Incremental).
    Constant(f64),
    /// A sequence of `(speed, time)` intervals — the Vdd-Hopping
    /// execution ("the energy consumed is the sum, on each time
    /// interval with constant speed s, of the energy consumed during
    /// this interval at speed s").
    Pieces(Vec<(f64, f64)>),
}

impl SpeedProfile {
    /// Total execution time of the task under this profile.
    pub fn duration(&self) -> f64 {
        match self {
            SpeedProfile::Constant(_) => f64::NAN, // needs the work; see `duration_for`
            SpeedProfile::Pieces(ps) => ps.iter().map(|&(_, t)| t).sum(),
        }
    }

    /// Execution time for `w` units of work.
    pub fn duration_for(&self, w: f64) -> f64 {
        match self {
            SpeedProfile::Constant(s) => w / s,
            SpeedProfile::Pieces(ps) => ps.iter().map(|&(_, t)| t).sum(),
        }
    }

    /// Work accomplished by the profile (`∫ s dt`). For a constant
    /// profile this is defined by the task's work, so the caller
    /// passes it in.
    pub fn work_done(&self, w_for_constant: f64) -> f64 {
        match self {
            SpeedProfile::Constant(_) => w_for_constant,
            SpeedProfile::Pieces(ps) => ps.iter().map(|&(s, t)| s * t).sum(),
        }
    }

    /// Energy consumed executing `w` units of work under this profile.
    pub fn energy(&self, w: f64, p: PowerLaw) -> f64 {
        match self {
            SpeedProfile::Constant(s) => p.energy_at_speed(w, *s),
            SpeedProfile::Pieces(ps) => ps.iter().map(|&(s, t)| p.energy(s, t)).sum(),
        }
    }

    /// Mean speed (`work / duration`).
    pub fn mean_speed(&self, w: f64) -> f64 {
        match self {
            SpeedProfile::Constant(s) => *s,
            SpeedProfile::Pieces(_) => {
                let d = self.duration_for(w);
                self.work_done(w) / d
            }
        }
    }
}

/// Why a schedule is infeasible.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Wrong number of per-task entries.
    WrongSize { expected: usize, got: usize },
    /// A start time is negative.
    NegativeStart(usize),
    /// A speed is inadmissible under the model.
    BadSpeed { task: usize, speed: f64 },
    /// The model forbids mid-task speed switching but the profile has
    /// several pieces.
    SwitchForbidden(usize),
    /// A Vdd-Hopping piece uses a speed that is not one of the modes.
    NotAMode { task: usize, speed: f64 },
    /// The profile does not accomplish the task's work.
    WorkMismatch { task: usize, done: f64, want: f64 },
    /// A precedence constraint `t_i + d_j ≤ t_j` is violated.
    PrecedenceViolated { from: usize, to: usize },
    /// A task completes after the deadline.
    DeadlineViolated {
        task: usize,
        completion: f64,
        deadline: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongSize { expected, got } => {
                write!(f, "schedule covers {got} tasks, graph has {expected}")
            }
            ScheduleError::NegativeStart(i) => write!(f, "task T{i} starts before time 0"),
            ScheduleError::BadSpeed { task, speed } => {
                write!(f, "task T{task} runs at inadmissible speed {speed}")
            }
            ScheduleError::SwitchForbidden(i) => {
                write!(f, "task T{i} switches speed mid-task, model forbids it")
            }
            ScheduleError::NotAMode { task, speed } => {
                write!(f, "task T{task} piece speed {speed} is not a mode")
            }
            ScheduleError::WorkMismatch { task, done, want } => {
                write!(f, "task T{task} does {done} work, needs {want}")
            }
            ScheduleError::PrecedenceViolated { from, to } => {
                write!(f, "precedence T{from} → T{to} violated")
            }
            ScheduleError::DeadlineViolated {
                task,
                completion,
                deadline,
            } => {
                write!(
                    f,
                    "task T{task} completes at {completion} > deadline {deadline}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete solution to `MinEnergy(Ĝ, D)`: a start time and a speed
/// profile per task.
///
/// ```
/// use models::{EnergyModel, PowerLaw, Schedule};
/// use taskgraph::TaskGraph;
///
/// let g = TaskGraph::new(vec![2.0, 2.0], &[(0, 1)]).unwrap();
/// let s = Schedule::asap_from_speeds(&g, &[2.0, 1.0]);
/// assert_eq!(s.makespan(&g), 3.0);                    // 1 + 2
/// assert_eq!(s.energy(&g, PowerLaw::CUBIC), 10.0);    // 4·2 + 1·2
/// s.validate(&g, &EnergyModel::continuous(2.0), 3.0).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    starts: Vec<f64>,
    profiles: Vec<SpeedProfile>,
}

impl Schedule {
    /// Build from explicit starts and profiles.
    pub fn new(starts: Vec<f64>, profiles: Vec<SpeedProfile>) -> Schedule {
        assert_eq!(starts.len(), profiles.len());
        Schedule { starts, profiles }
    }

    /// Build the **as-soon-as-possible** schedule for the given
    /// constant per-task speeds: every task starts at the maximum
    /// completion time of its predecessors.
    pub fn asap_from_speeds(g: &TaskGraph, speeds: &[f64]) -> Schedule {
        assert_eq!(speeds.len(), g.n());
        let durations: Vec<f64> = speeds
            .iter()
            .zip(g.weights())
            .map(|(&s, &w)| w / s)
            .collect();
        let ecl = analysis::earliest_completion(g, &durations);
        let starts: Vec<f64> = ecl.iter().zip(&durations).map(|(c, d)| c - d).collect();
        let profiles = speeds.iter().map(|&s| SpeedProfile::Constant(s)).collect();
        Schedule { starts, profiles }
    }

    /// Build the ASAP schedule from explicit per-task profiles.
    pub fn asap_from_profiles(g: &TaskGraph, profiles: Vec<SpeedProfile>) -> Schedule {
        assert_eq!(profiles.len(), g.n());
        let durations: Vec<f64> = profiles
            .iter()
            .zip(g.weights())
            .map(|(p, &w)| p.duration_for(w))
            .collect();
        let ecl = analysis::earliest_completion(g, &durations);
        let starts: Vec<f64> = ecl.iter().zip(&durations).map(|(c, d)| c - d).collect();
        Schedule { starts, profiles }
    }

    /// Number of tasks covered.
    pub fn n(&self) -> usize {
        self.starts.len()
    }

    /// Start time of task `t`.
    pub fn start(&self, t: TaskId) -> f64 {
        self.starts[t.0]
    }

    /// Speed profile of task `t`.
    pub fn profile(&self, t: TaskId) -> &SpeedProfile {
        &self.profiles[t.0]
    }

    /// Duration of task `t` given its work `w`.
    pub fn duration(&self, t: TaskId, g: &TaskGraph) -> f64 {
        self.profiles[t.0].duration_for(g.weight(t))
    }

    /// Completion time `t_i = start + duration`.
    pub fn completion(&self, t: TaskId, g: &TaskGraph) -> f64 {
        self.start(t) + self.duration(t, g)
    }

    /// Latest completion over all tasks.
    pub fn makespan(&self, g: &TaskGraph) -> f64 {
        g.tasks()
            .map(|t| self.completion(t, g))
            .fold(0.0f64, f64::max)
    }

    /// Total dynamic energy `Σ_i E(profile_i, w_i)`.
    pub fn energy(&self, g: &TaskGraph, p: PowerLaw) -> f64 {
        g.tasks()
            .map(|t| self.profiles[t.0].energy(g.weight(t), p))
            .sum()
    }

    /// Per-task constant speeds, if every profile is constant.
    pub fn constant_speeds(&self) -> Option<Vec<f64>> {
        self.profiles
            .iter()
            .map(|p| match p {
                SpeedProfile::Constant(s) => Some(*s),
                SpeedProfile::Pieces(_) => None,
            })
            .collect()
    }

    /// Full feasibility check against graph, model, and deadline.
    ///
    /// Verifies (i) size, (ii) non-negative starts, (iii) per-task
    /// speed admissibility under `model` (including the no-mid-task-
    /// switch rule for Discrete/Incremental and mode membership for
    /// Vdd pieces), (iv) work completion `∫ s dt = w_i`, (v) every
    /// precedence constraint of `Ĝ`, and (vi) the deadline.
    pub fn validate(
        &self,
        g: &TaskGraph,
        model: &EnergyModel,
        deadline: f64,
    ) -> Result<(), ScheduleError> {
        if self.n() != g.n() {
            return Err(ScheduleError::WrongSize {
                expected: g.n(),
                got: self.n(),
            });
        }
        for t in g.tasks() {
            let i = t.0;
            if self.starts[i] < -TOL {
                return Err(ScheduleError::NegativeStart(i));
            }
            match &self.profiles[i] {
                SpeedProfile::Constant(s) => {
                    if !model.admits_constant_speed(*s) {
                        return Err(ScheduleError::BadSpeed { task: i, speed: *s });
                    }
                }
                SpeedProfile::Pieces(ps) => {
                    if !model.allows_mid_task_switch() && ps.len() > 1 {
                        return Err(ScheduleError::SwitchForbidden(i));
                    }
                    for &(s, _) in ps {
                        match model {
                            EnergyModel::VddHopping(modes) => {
                                if !modes.contains(s) {
                                    return Err(ScheduleError::NotAMode { task: i, speed: s });
                                }
                            }
                            _ => {
                                if !model.admits_constant_speed(s) {
                                    return Err(ScheduleError::BadSpeed { task: i, speed: s });
                                }
                            }
                        }
                    }
                    let done = self.profiles[i].work_done(g.weight(t));
                    let want = g.weight(t);
                    if (done - want).abs() > TOL * (1.0 + want.abs()) {
                        return Err(ScheduleError::WorkMismatch {
                            task: i,
                            done,
                            want,
                        });
                    }
                }
            }
        }
        for &(u, v) in g.edges() {
            let end_u = self.completion(u, g);
            let start_v = self.start(v);
            if start_v < end_u - TOL * (1.0 + end_u.abs()) {
                return Err(ScheduleError::PrecedenceViolated { from: u.0, to: v.0 });
            }
        }
        for t in g.tasks() {
            let c = self.completion(t, g);
            if c > deadline * (1.0 + TOL) + TOL {
                return Err(ScheduleError::DeadlineViolated {
                    task: t.0,
                    completion: c,
                    deadline,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::DiscreteModes;
    use taskgraph::generators;

    fn cont() -> EnergyModel {
        EnergyModel::continuous_unbounded()
    }

    #[test]
    fn asap_diamond_schedule() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let s = Schedule::asap_from_speeds(&g, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.start(TaskId(0)), 0.0);
        assert_eq!(s.start(TaskId(1)), 1.0);
        assert_eq!(s.start(TaskId(2)), 1.0);
        assert_eq!(s.start(TaskId(3)), 4.0);
        assert_eq!(s.makespan(&g), 8.0);
        s.validate(&g, &cont(), 8.0).unwrap();
        assert!(matches!(
            s.validate(&g, &cont(), 7.9),
            Err(ScheduleError::DeadlineViolated { .. })
        ));
    }

    #[test]
    fn energy_accounting_cubic() {
        let g = generators::chain(&[2.0, 3.0]);
        let s = Schedule::asap_from_speeds(&g, &[2.0, 1.0]);
        // E = s² w: 4·2 + 1·3 = 11.
        assert!((s.energy(&g, PowerLaw::CUBIC) - 11.0).abs() < 1e-12);
        assert!((s.makespan(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn precedence_violation_detected() {
        let g = generators::chain(&[1.0, 1.0]);
        let s = Schedule::new(
            vec![0.0, 0.5],
            vec![SpeedProfile::Constant(1.0), SpeedProfile::Constant(1.0)],
        );
        assert!(matches!(
            s.validate(&g, &cont(), 10.0),
            Err(ScheduleError::PrecedenceViolated { from: 0, to: 1 })
        ));
    }

    #[test]
    fn vdd_profile_checks_modes_and_work() {
        let g = generators::chain(&[3.0]);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let vdd = EnergyModel::VddHopping(modes);
        // 1·1 + 2·1 = 3 units of work: feasible.
        let ok = Schedule::new(
            vec![0.0],
            vec![SpeedProfile::Pieces(vec![(1.0, 1.0), (2.0, 1.0)])],
        );
        ok.validate(&g, &vdd, 2.0).unwrap();
        assert!((ok.profile(TaskId(0)).mean_speed(3.0) - 1.5).abs() < 1e-12);
        // Energy: 1³·1 + 2³·1 = 9.
        assert!((ok.energy(&g, PowerLaw::CUBIC) - 9.0).abs() < 1e-12);
        // Speed 1.5 is not a mode.
        let bad_mode = Schedule::new(vec![0.0], vec![SpeedProfile::Pieces(vec![(1.5, 2.0)])]);
        assert!(matches!(
            bad_mode.validate(&g, &vdd, 10.0),
            Err(ScheduleError::NotAMode { .. })
        ));
        // Work mismatch.
        let too_little = Schedule::new(vec![0.0], vec![SpeedProfile::Pieces(vec![(1.0, 1.0)])]);
        assert!(matches!(
            too_little.validate(&g, &vdd, 10.0),
            Err(ScheduleError::WorkMismatch { .. })
        ));
    }

    #[test]
    fn discrete_forbids_mid_task_switch() {
        let g = generators::chain(&[2.0]);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let disc = EnergyModel::Discrete(modes);
        let s = Schedule::new(
            vec![0.0],
            vec![SpeedProfile::Pieces(vec![(1.0, 1.0), (2.0, 0.5)])],
        );
        assert!(matches!(
            s.validate(&g, &disc, 10.0),
            Err(ScheduleError::SwitchForbidden(0))
        ));
        // Constant non-mode speed is rejected too.
        let s2 = Schedule::asap_from_speeds(&g, &[1.5]);
        assert!(matches!(
            s2.validate(&g, &disc, 10.0),
            Err(ScheduleError::BadSpeed { .. })
        ));
    }

    #[test]
    fn negative_start_detected() {
        let g = generators::chain(&[1.0]);
        let s = Schedule::new(vec![-1.0], vec![SpeedProfile::Constant(1.0)]);
        assert!(matches!(
            s.validate(&g, &cont(), 10.0),
            Err(ScheduleError::NegativeStart(0))
        ));
    }

    #[test]
    fn smax_enforced_for_continuous() {
        let g = generators::chain(&[1.0]);
        let s = Schedule::asap_from_speeds(&g, &[3.0]);
        s.validate(&g, &EnergyModel::continuous(3.0), 10.0).unwrap();
        assert!(matches!(
            s.validate(&g, &EnergyModel::continuous(2.0), 10.0),
            Err(ScheduleError::BadSpeed { .. })
        ));
    }

    #[test]
    fn constant_speeds_extraction() {
        let g = generators::chain(&[1.0, 2.0]);
        let s = Schedule::asap_from_speeds(&g, &[1.0, 2.0]);
        assert_eq!(s.constant_speeds(), Some(vec![1.0, 2.0]));
        let mixed = Schedule::new(
            vec![0.0, 1.0],
            vec![
                SpeedProfile::Constant(1.0),
                SpeedProfile::Pieces(vec![(2.0, 1.0)]),
            ],
        );
        assert_eq!(mixed.constant_speeds(), None);
    }

    #[test]
    fn asap_from_profiles_matches_speeds() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let sp = Schedule::asap_from_speeds(&g, &[1.0, 2.0, 1.0, 1.0]);
        let pr = Schedule::asap_from_profiles(
            &g,
            vec![
                SpeedProfile::Constant(1.0),
                SpeedProfile::Constant(2.0),
                SpeedProfile::Constant(1.0),
                SpeedProfile::Constant(1.0),
            ],
        );
        assert_eq!(sp, pr);
    }
}
