//! The dynamic power function `P(s) = s^α`.

/// Power-law dynamic energy: a processor operated at speed `s` for `d`
/// time units consumes `s^α · d` joules.
///
/// The paper fixes `α = 3` (citing JouleTrack and Ishihara–Yasuura);
/// we keep the exponent as a parameter because every algorithm in the
/// paper only needs `α > 1` (strict convexity), and the companion
/// report states the results for general `α`. [`PowerLaw::CUBIC`] is
/// the paper's default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    alpha: f64,
}

impl PowerLaw {
    /// The paper's `s³` model.
    pub const CUBIC: PowerLaw = PowerLaw { alpha: 3.0 };

    /// A general exponent `α > 1` (required for strict convexity of
    /// the energy in the task duration).
    pub fn new(alpha: f64) -> PowerLaw {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "power exponent must be finite and > 1, got {alpha}"
        );
        PowerLaw { alpha }
    }

    /// The exponent `α`.
    #[inline]
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Instantaneous power at speed `s`: `s^α` watts.
    #[inline]
    pub fn power(self, s: f64) -> f64 {
        s.powf(self.alpha)
    }

    /// Energy of running at constant speed `s` for `d` time units.
    #[inline]
    pub fn energy(self, s: f64, d: f64) -> f64 {
        self.power(s) * d
    }

    /// Energy of executing `w` units of work in exactly `d` time units
    /// at constant speed: `(w/d)^α · d = w^α / d^{α−1}`.
    ///
    /// This is the objective's per-task term after eliminating the
    /// speed (`§1`: "objective function rewritten as
    /// `Σ (1/s_i)^{−2} w_i`" for `α = 3`).
    #[inline]
    pub fn energy_for_work(self, w: f64, d: f64) -> f64 {
        debug_assert!(d > 0.0);
        w.powf(self.alpha) / d.powf(self.alpha - 1.0)
    }

    /// Energy of executing `w` units of work at constant speed `s`:
    /// `s^{α−1} · w`.
    #[inline]
    pub fn energy_at_speed(self, w: f64, s: f64) -> f64 {
        s.powf(self.alpha - 1.0) * w
    }

    /// The "α-norm" combinator used by parallel composition:
    /// `(Σ x_i^α)^{1/α}` (cube root of the sum of cubes for `α = 3`,
    /// exactly Theorem 1's expression).
    pub fn parallel_combine(self, xs: impl IntoIterator<Item = f64>) -> f64 {
        let s: f64 = xs.into_iter().map(|x| x.powf(self.alpha)).sum();
        s.powf(1.0 / self.alpha)
    }
}

impl Default for PowerLaw {
    fn default() -> Self {
        PowerLaw::CUBIC
    }
}

/// Static platform energy over an execution window.
///
/// The paper's §1 deliberately excludes this term: "We do not take
/// static energy into account, because all processors are up and alive
/// during the whole execution" — with a fixed processor count and a
/// fixed deadline, the static part `processors · P_static · D` is a
/// constant offset that no speed assignment can change, so it never
/// affects which schedule is optimal. This helper exists for
/// *reporting* total platform energy (e.g. when comparing deadlines of
/// different lengths, where the offset is no longer constant).
pub fn static_energy(processors: usize, static_power: f64, duration: f64) -> f64 {
    assert!(static_power >= 0.0 && duration >= 0.0);
    processors as f64 * static_power * duration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_matches_paper() {
        let p = PowerLaw::CUBIC;
        assert_eq!(p.alpha(), 3.0);
        // s³ watts for d time units.
        assert!((p.energy(2.0, 5.0) - 40.0).abs() < 1e-12);
        // w³ / d² form.
        assert!((p.energy_for_work(4.0, 2.0) - 16.0).abs() < 1e-12);
        // equal to running w at speed w/d: (w/d)^3 * d
        let (w, d) = (3.0, 1.5);
        assert!((p.energy_for_work(w, d) - p.energy(w / d, d)).abs() < 1e-12);
        // s² · w form.
        assert!((p.energy_at_speed(4.0, 2.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn general_alpha_consistency() {
        let p = PowerLaw::new(2.5);
        let (w, d) = (7.0, 3.0);
        let s = w / d;
        assert!((p.energy_for_work(w, d) - p.energy(s, d)).abs() < 1e-9);
        assert!((p.energy_at_speed(w, s) - p.energy(s, d)).abs() < 1e-9);
    }

    #[test]
    fn parallel_combine_is_cube_root_of_sum_of_cubes() {
        let p = PowerLaw::CUBIC;
        let c = p.parallel_combine([1.0, 2.0, 3.0]);
        assert!((c - 36.0f64.cbrt()).abs() < 1e-12);
    }

    #[test]
    fn energy_decreases_when_slowing_down() {
        // Convexity sanity: same work over a longer duration costs less.
        let p = PowerLaw::CUBIC;
        assert!(p.energy_for_work(5.0, 2.0) > p.energy_for_work(5.0, 3.0));
    }

    #[test]
    #[should_panic]
    fn alpha_must_exceed_one() {
        let _ = PowerLaw::new(1.0);
    }

    #[test]
    fn static_energy_is_procs_times_power_times_time() {
        assert_eq!(static_energy(4, 0.5, 10.0), 20.0);
        assert_eq!(static_energy(0, 1.0, 10.0), 0.0);
        // Constant in the speed assignment: only D, P_static, p count.
        assert_eq!(static_energy(2, 0.0, 100.0), 0.0);
    }
}
