//! Property tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::analysis::{
    critical_path, critical_path_weight, earliest_completion, is_topo_order, makespan,
    reachability, reaches, slack, topo_order,
};
use taskgraph::{generators, SpTree, TaskGraph};

fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..20, any::<u64>(), 0.05f64..0.6).prop_map(|(n, seed, p)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_dag(n, p, 0.5, 5.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn topo_order_is_always_valid(g in arb_dag()) {
        let o = topo_order(&g);
        prop_assert!(is_topo_order(&g, &o));
    }

    #[test]
    fn makespan_bounds(g in arb_dag()) {
        let mk = makespan(&g, g.weights());
        let max_w = g.weights().iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(mk >= max_w - 1e-12, "makespan below heaviest task");
        prop_assert!(mk <= g.total_work() + 1e-9, "makespan above serial time");
    }

    #[test]
    fn reversal_preserves_critical_path_weight(g in arb_dag()) {
        let a = critical_path_weight(&g);
        let b = critical_path_weight(&g.reversed());
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    }

    #[test]
    fn critical_path_is_a_real_path_with_cp_weight(g in arb_dag()) {
        let path = critical_path(&g);
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]), "broken edge {} -> {}", w[0], w[1]);
        }
        let weight: f64 = path.iter().map(|&t| g.weight(t)).sum();
        prop_assert!((weight - critical_path_weight(&g)).abs() <= 1e-6 * weight.max(1.0));
    }

    #[test]
    fn slack_nonnegative_at_makespan(g in arb_dag()) {
        let mk = makespan(&g, g.weights());
        for s in slack(&g, g.weights(), mk) {
            prop_assert!(s >= -1e-9, "negative slack {s} at the exact makespan");
        }
    }

    #[test]
    fn reachability_agrees_with_edges_and_completion(g in arb_dag()) {
        let r = reachability(&g);
        for &(u, v) in g.edges() {
            prop_assert!(reaches(&r, u, v));
            prop_assert!(!reaches(&r, v, u), "cycle {u} <-> {v}");
        }
        // If u reaches v then u completes no later than v's start
        // allows: ecl_u ≤ ecl_v − w_v.
        let ecl = earliest_completion(&g, g.weights());
        for u in g.tasks() {
            for v in g.tasks() {
                if u != v && reaches(&r, u, v) {
                    prop_assert!(ecl[u.index()] <= ecl[v.index()] - g.weight(v) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn sp_generator_roundtrip(n in 1usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, tree) = generators::random_sp(n, 0.5, 0.5, 4.0, &mut rng);
        prop_assert_eq!(tree.len(), n);
        let rec = SpTree::from_graph(&g);
        prop_assert!(rec.is_some());
        let mut a = tree.leaves();
        let mut b = rec.unwrap().leaves();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn applied_edits_keep_prepared_views_consistent(g in arb_dag(), seed in any::<u64>()) {
        // Whatever a prepared instance carries across an edit must
        // agree with a from-scratch analysis of the edited graph.
        use rand::Rng;
        use std::sync::Arc;
        use taskgraph::edit::GraphEdit;
        use taskgraph::{PreparedGraph, PreparedInstance};

        let mut rng = StdRng::seed_from_u64(seed);
        let order = topo_order(&g);
        let edits = vec![
            GraphEdit::SetWeight {
                task: rng.gen_range(0..g.n()),
                weight: rng.gen_range(0.25..4.0),
            },
            GraphEdit::InsertEdge {
                from: order[0].index(),
                to: order[order.len() - 1].index(),
            },
        ];
        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        let patched = inst.apply(&edits).unwrap();
        let (rebuilt, _) = taskgraph::edit::apply_edits(&g, &edits).unwrap();
        let fresh = PreparedGraph::new(&rebuilt);
        prop_assert_eq!(patched.graph(), &rebuilt);
        prop_assert!(is_topo_order(&rebuilt, patched.view().topo()));
        prop_assert_eq!(patched.view().shape(), fresh.shape());
        prop_assert_eq!(
            patched.view().critical_path_weight(),
            fresh.critical_path_weight()
        );
        let mut a = patched.view().reduced().edges().to_vec();
        let mut b = fresh.reduced().edges().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn execution_graph_monotone_under_extra_edges(g in arb_dag()) {
        // Adding any valid serialization edge can only increase the
        // critical path weight.
        let base = critical_path_weight(&g);
        let o = topo_order(&g);
        if o.len() >= 2 {
            let extra = (o[0].index(), o[1].index());
            if let Ok(g2) = g.with_extra_edges(&[extra]) {
                prop_assert!(critical_path_weight(&g2) >= base - 1e-9);
            }
        }
    }
}
