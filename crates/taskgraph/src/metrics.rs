//! Structural metrics of execution graphs, for experiment reporting.

use crate::analysis::topo_order;
use crate::graph::{TaskGraph, TaskId};

/// Summary metrics of a DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphMetrics {
    /// Number of tasks.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Longest path length in *hops* (number of tasks).
    pub depth: usize,
    /// Maximum number of tasks at the same hop-level (a lower bound on
    /// the graph's width / achievable parallelism).
    pub max_level_width: usize,
    /// Edge density `m / (n·(n−1)/2)`.
    pub density: f64,
    /// Total work `Σ w`.
    pub total_work: f64,
    /// Critical-path weight.
    pub cp_weight: f64,
    /// Parallelism `total_work / cp_weight` (average width of the
    /// weighted schedule; 1 for a chain).
    pub parallelism: f64,
}

/// Hop-level of each task (longest path from a source, in tasks).
pub fn levels(g: &TaskGraph) -> Vec<usize> {
    let mut lvl = vec![0usize; g.n()];
    for &t in &topo_order(g) {
        lvl[t.0] = g.preds(t).iter().map(|&p| lvl[p.0] + 1).max().unwrap_or(0);
    }
    lvl
}

/// Compute all metrics.
pub fn metrics(g: &TaskGraph) -> GraphMetrics {
    let lvl = levels(g);
    let depth = lvl.iter().max().map_or(0, |&d| d + 1);
    let mut width_at = vec![0usize; depth.max(1)];
    for &l in &lvl {
        width_at[l] += 1;
    }
    let n = g.n();
    let cp = crate::analysis::critical_path_weight(g);
    GraphMetrics {
        n,
        m: g.m(),
        depth,
        max_level_width: width_at.iter().copied().max().unwrap_or(0),
        density: if n > 1 {
            g.m() as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
        } else {
            0.0
        },
        total_work: g.total_work(),
        cp_weight: cp,
        parallelism: g.total_work() / cp,
    }
}

/// The number of tasks per hop-level, index = level.
pub fn level_widths(g: &TaskGraph) -> Vec<usize> {
    let lvl = levels(g);
    let depth = lvl.iter().max().map_or(0, |&d| d + 1);
    let mut width_at = vec![0usize; depth];
    for &l in &lvl {
        width_at[l] += 1;
    }
    width_at
}

/// Whether `t` lies on some critical (heaviest) path.
pub fn is_critical(g: &TaskGraph, t: TaskId, tol: f64) -> bool {
    let s = crate::analysis::slack(g, g.weights(), crate::analysis::critical_path_weight(g));
    s[t.0].abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn chain_metrics() {
        let g = generators::chain(&[1.0, 2.0, 3.0]);
        let m = metrics(&g);
        assert_eq!(m.depth, 3);
        assert_eq!(m.max_level_width, 1);
        assert!((m.parallelism - 1.0).abs() < 1e-12);
        assert_eq!(levels(&g), vec![0, 1, 2]);
    }

    #[test]
    fn fork_metrics() {
        let g = generators::fork(1.0, &[1.0, 1.0, 1.0]);
        let m = metrics(&g);
        assert_eq!(m.depth, 2);
        assert_eq!(m.max_level_width, 3);
        assert!((m.parallelism - 2.0).abs() < 1e-12); // 4 work / 2 cp
        assert_eq!(level_widths(&g), vec![1, 3]);
    }

    #[test]
    fn diamond_criticality() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        use crate::graph::TaskId;
        assert!(is_critical(&g, TaskId(0), 1e-9));
        assert!(!is_critical(&g, TaskId(1), 1e-9));
        assert!(is_critical(&g, TaskId(2), 1e-9));
        assert!(is_critical(&g, TaskId(3), 1e-9));
    }

    #[test]
    fn workflow_metrics_sane() {
        let g = crate::workflows::fft(3);
        let m = metrics(&g);
        assert_eq!(m.depth, 4);
        assert_eq!(m.max_level_width, 8);
        assert!(m.density > 0.0 && m.density < 1.0);
    }
}
