//! Cached graph analysis for repeated solves on the same graph.
//!
//! Solving `MinEnergy(Ĝ, D)` many times on one graph — deadline
//! sweeps, budget bisections, model comparisons — re-derives the same
//! topological order, shape classification, SP decomposition, critical
//! path, and transitive reduction on every call. [`PreparedGraph`]
//! computes each of these **at most once** (lazily, on first use) and
//! hands out shared references, so a thousand solves pay for one
//! analysis.
//!
//! All caches are [`OnceLock`]s, so a `&PreparedGraph` can be shared
//! across scoped threads: whichever solve needs a pass first fills the
//! cache for everyone. The once-only guarantee is observable through
//! [`crate::profiling`].

use std::sync::OnceLock;

use crate::analysis;
use crate::graph::{TaskGraph, TaskId};
use crate::sp::SpTree;
use crate::structure::{self, Shape};

/// A task graph plus lazily cached analysis results.
///
/// Borrowing (rather than owning) the graph keeps preparation free and
/// lets call sites wrap any `&TaskGraph` without cloning:
///
/// ```
/// use taskgraph::{generators, PreparedGraph, Shape};
///
/// let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
/// let prep = PreparedGraph::new(&g);
/// assert_eq!(prep.shape(), Shape::SeriesParallel);
/// assert_eq!(prep.critical_path_weight(), 8.0);
/// // Second call: served from the cache, no re-analysis.
/// assert_eq!(prep.shape(), Shape::SeriesParallel);
/// ```
#[derive(Debug)]
pub struct PreparedGraph<'g> {
    g: &'g TaskGraph,
    topo: OnceLock<Vec<TaskId>>,
    class: OnceLock<(Shape, Option<SpTree>)>,
    cp_weight: OnceLock<f64>,
    reduced: OnceLock<TaskGraph>,
}

impl<'g> PreparedGraph<'g> {
    /// Wrap a graph. No analysis runs until a cache is first used.
    pub fn new(g: &'g TaskGraph) -> Self {
        PreparedGraph {
            g,
            topo: OnceLock::new(),
            class: OnceLock::new(),
            cp_weight: OnceLock::new(),
            reduced: OnceLock::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g TaskGraph {
        self.g
    }

    /// The cached topological order ([`analysis::topo_order`]).
    pub fn topo(&self) -> &[TaskId] {
        self.topo.get_or_init(|| analysis::topo_order(self.g))
    }

    /// The cached shape classification ([`structure::classify`]).
    pub fn shape(&self) -> Shape {
        self.classification().0
    }

    /// The cached series–parallel decomposition: `Some` exactly when
    /// [`Self::shape`] is [`Shape::SeriesParallel`]. (More specific
    /// shapes — chains, forks, trees — have cheaper dedicated closed
    /// forms and skip the SP tree.)
    pub fn sp_tree(&self) -> Option<&SpTree> {
        self.classification().1.as_ref()
    }

    fn classification(&self) -> &(Shape, Option<SpTree>) {
        self.class
            .get_or_init(|| structure::classify_with_tree_ordered(self.g, self.topo()))
    }

    /// The cached critical-path weight
    /// ([`analysis::critical_path_weight`]).
    pub fn critical_path_weight(&self) -> f64 {
        *self
            .cp_weight
            .get_or_init(|| self.makespan(self.g.weights()))
    }

    /// The cached transitive reduction
    /// ([`analysis::transitive_reduction`]): same precedence relation,
    /// minimal edge set — what the LP/barrier substrates want.
    pub fn reduced(&self) -> &TaskGraph {
        self.reduced
            .get_or_init(|| analysis::transitive_reduction_ordered(self.g, self.topo()))
    }

    /// [`analysis::earliest_completion`] using the cached order.
    pub fn earliest_completion(&self, durations: &[f64]) -> Vec<f64> {
        analysis::earliest_completion_ordered(self.g, durations, self.topo())
    }

    /// [`analysis::latest_completion`] using the cached order.
    pub fn latest_completion(&self, durations: &[f64], deadline: f64) -> Vec<f64> {
        analysis::latest_completion_ordered(self.g, durations, deadline, self.topo())
    }

    /// [`analysis::makespan`] using the cached order.
    pub fn makespan(&self, durations: &[f64]) -> f64 {
        analysis::makespan_ordered(self.g, durations, self.topo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::profiling;

    #[test]
    fn analysis_runs_at_most_once() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let prep = PreparedGraph::new(&g);
        let before = profiling::counts();
        for _ in 0..10 {
            assert_eq!(prep.shape(), Shape::SeriesParallel);
            assert!(prep.sp_tree().is_some());
            assert_eq!(prep.critical_path_weight(), 8.0);
            assert_eq!(prep.topo().len(), 4);
            assert_eq!(prep.reduced().m(), 4);
            let _ = prep.makespan(g.weights());
            let _ = prep.earliest_completion(g.weights());
            let _ = prep.latest_completion(g.weights(), 10.0);
        }
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 1, "topo order must be computed once");
        assert_eq!(delta.classify, 1, "classification must run once");
        assert_eq!(delta.sp_from_graph, 1, "SP recognition must run once");
    }

    #[test]
    fn cached_results_match_direct_analysis() {
        let g = crate::TaskGraph::new(
            vec![1.0, 2.0, 1.5, 3.0, 0.5],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4)],
        )
        .unwrap();
        let prep = PreparedGraph::new(&g);
        assert_eq!(prep.topo(), analysis::topo_order(&g));
        assert_eq!(prep.shape(), structure::classify(&g));
        assert_eq!(
            prep.critical_path_weight(),
            analysis::critical_path_weight(&g)
        );
        assert_eq!(
            prep.reduced().edges(),
            analysis::transitive_reduction(&g).edges()
        );
        let durs = vec![0.5; 5];
        assert_eq!(
            prep.earliest_completion(&durs),
            analysis::earliest_completion(&g, &durs)
        );
        assert_eq!(prep.makespan(&durs), analysis::makespan(&g, &durs));
    }

    #[test]
    fn shared_across_threads() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let prep = PreparedGraph::new(&g);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(prep.shape(), Shape::SeriesParallel);
                    assert!(prep.critical_path_weight() > 0.0);
                });
            }
        });
    }
}
