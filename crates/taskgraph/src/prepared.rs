//! Cached graph analysis for repeated solves on the same graph.
//!
//! Solving `MinEnergy(Ĝ, D)` many times on one graph — deadline
//! sweeps, budget bisections, model comparisons — re-derives the same
//! topological order, shape classification, SP decomposition, critical
//! path, and transitive reduction on every call. [`PreparedGraph`]
//! computes each of these **at most once** (lazily, on first use) and
//! hands out shared references, so a thousand solves pay for one
//! analysis.
//!
//! All caches are [`OnceLock`]s, so a `&PreparedGraph` can be shared
//! across scoped threads: whichever solve needs a pass first fills the
//! cache for everyone. The once-only guarantee is observable through
//! [`crate::profiling`].

use std::sync::{Arc, OnceLock};

use crate::analysis;
use crate::edit::{self, EditError, GraphEdit};
use crate::graph::{TaskGraph, TaskId};
use crate::sp::SpTree;
use crate::structure::{self, Shape};

/// The lazily filled analysis caches, separated from the graph borrow
/// so both [`PreparedGraph`] (borrowed) and [`PreparedInstance`]
/// (owned, `'static`) can share one set behind an [`Arc`]: a view
/// produced by [`PreparedInstance::view`] fills the *owner's* caches.
#[derive(Debug, Default)]
struct Caches {
    topo: OnceLock<Vec<TaskId>>,
    class: OnceLock<(Shape, Option<SpTree>)>,
    cp_weight: OnceLock<f64>,
    reduced: OnceLock<TaskGraph>,
    /// Earliest completion times at unit speed (durations = weights):
    /// the critical-path weight is its maximum, and a cached copy is
    /// what the cone-bounded relaxation repairs after an edit. Not
    /// exported by [`PreparedInstance::snapshot`] — it recomputes
    /// lazily after a restore.
    ecl: OnceLock<Vec<f64>>,
    /// Bit-parallel reachability matrix ([`analysis::reachability`]),
    /// kept so the transitive reduction can be repaired edge-locally
    /// after a structural edit. Behind an [`Arc`] so weight-only
    /// carryover is a pointer bump. Not exported by snapshots.
    reach: OnceLock<Arc<Vec<Vec<u64>>>>,
}

impl Caches {
    fn topo(&self, g: &TaskGraph) -> &[TaskId] {
        self.topo.get_or_init(|| analysis::topo_order(g))
    }

    fn classification(&self, g: &TaskGraph) -> &(Shape, Option<SpTree>) {
        self.class
            .get_or_init(|| structure::classify_with_tree_ordered(g, self.topo(g)))
    }

    fn ecl(&self, g: &TaskGraph) -> &[f64] {
        self.ecl
            .get_or_init(|| analysis::earliest_completion_ordered(g, g.weights(), self.topo(g)))
    }

    fn cp_weight(&self, g: &TaskGraph) -> f64 {
        *self
            .cp_weight
            .get_or_init(|| self.ecl(g).iter().fold(0.0f64, |a, &b| a.max(b)))
    }

    fn reach(&self, g: &TaskGraph) -> &Arc<Vec<Vec<u64>>> {
        self.reach
            .get_or_init(|| Arc::new(analysis::reachability_ordered(g, self.topo(g))))
    }

    fn reduced(&self, g: &TaskGraph) -> &TaskGraph {
        self.reduced
            .get_or_init(|| analysis::transitive_reduction_with_reach(g, self.reach(g)))
    }
}

/// A task graph plus lazily cached analysis results.
///
/// Borrowing (rather than owning) the graph keeps preparation free and
/// lets call sites wrap any `&TaskGraph` without cloning:
///
/// ```
/// use taskgraph::{generators, PreparedGraph, Shape};
///
/// let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
/// let prep = PreparedGraph::new(&g);
/// assert_eq!(prep.shape(), Shape::SeriesParallel);
/// assert_eq!(prep.critical_path_weight(), 8.0);
/// // Second call: served from the cache, no re-analysis.
/// assert_eq!(prep.shape(), Shape::SeriesParallel);
/// ```
///
/// For a cacheable, owning variant (daemon caches, cross-request
/// reuse) see [`PreparedInstance`].
#[derive(Debug)]
pub struct PreparedGraph<'g> {
    g: &'g TaskGraph,
    caches: Arc<Caches>,
}

impl<'g> PreparedGraph<'g> {
    /// Wrap a graph. No analysis runs until a cache is first used.
    pub fn new(g: &'g TaskGraph) -> Self {
        PreparedGraph {
            g,
            caches: Arc::new(Caches::default()),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g TaskGraph {
        self.g
    }

    /// The cached topological order ([`analysis::topo_order`]).
    pub fn topo(&self) -> &[TaskId] {
        self.caches.topo(self.g)
    }

    /// The cached shape classification ([`structure::classify`]).
    pub fn shape(&self) -> Shape {
        self.caches.classification(self.g).0
    }

    /// The cached series–parallel decomposition: `Some` exactly when
    /// [`Self::shape`] is [`Shape::SeriesParallel`]. (More specific
    /// shapes — chains, forks, trees — have cheaper dedicated closed
    /// forms and skip the SP tree.)
    pub fn sp_tree(&self) -> Option<&SpTree> {
        self.caches.classification(self.g).1.as_ref()
    }

    /// The cached critical-path weight
    /// ([`analysis::critical_path_weight`]).
    pub fn critical_path_weight(&self) -> f64 {
        self.caches.cp_weight(self.g)
    }

    /// The cached transitive reduction
    /// ([`analysis::transitive_reduction`]): same precedence relation,
    /// minimal edge set — what the LP/barrier substrates want.
    pub fn reduced(&self) -> &TaskGraph {
        self.caches.reduced(self.g)
    }

    /// [`analysis::earliest_completion`] using the cached order.
    pub fn earliest_completion(&self, durations: &[f64]) -> Vec<f64> {
        analysis::earliest_completion_ordered(self.g, durations, self.topo())
    }

    /// [`analysis::latest_completion`] using the cached order.
    pub fn latest_completion(&self, durations: &[f64], deadline: f64) -> Vec<f64> {
        analysis::latest_completion_ordered(self.g, durations, deadline, self.topo())
    }

    /// [`analysis::makespan`] using the cached order.
    pub fn makespan(&self, durations: &[f64]) -> f64 {
        analysis::makespan_ordered(self.g, durations, self.topo())
    }
}

/// An **owning** prepared graph: [`Arc<TaskGraph>`] plus the same
/// lazily filled analysis caches as [`PreparedGraph`].
///
/// `PreparedGraph` borrows its graph, which makes it free to create
/// but impossible to store in a `'static` cache (a daemon serving
/// requests, an LRU of hot instances). `PreparedInstance` owns the
/// graph and is `Send + Sync + 'static`, so it can live in an
/// `Arc` shared across worker threads and requests. [`Self::view`]
/// hands out a `PreparedGraph` borrowing from `self` that **shares**
/// the caches: analysis filled through any view (or by
/// [`Self::warm`]) is permanently retained by the instance.
///
/// ```
/// use std::sync::Arc;
/// use taskgraph::{generators, PreparedInstance, Shape};
///
/// let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
/// let inst = PreparedInstance::new(Arc::new(g));
/// assert_eq!(inst.view().shape(), Shape::SeriesParallel);
/// // A later view reuses the analysis the first one computed.
/// assert_eq!(inst.view().critical_path_weight(), 8.0);
/// ```
#[derive(Debug)]
pub struct PreparedInstance {
    g: Arc<TaskGraph>,
    caches: Arc<Caches>,
}

impl PreparedInstance {
    /// Wrap an owned graph. No analysis runs until first use (or
    /// [`Self::warm`]).
    pub fn new(g: Arc<TaskGraph>) -> Self {
        PreparedInstance {
            g,
            caches: Arc::new(Caches::default()),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.g
    }

    /// A clone of the owning handle.
    pub fn graph_arc(&self) -> Arc<TaskGraph> {
        Arc::clone(&self.g)
    }

    /// A borrowed [`PreparedGraph`] view sharing this instance's
    /// caches — pass it to anything taking `&PreparedGraph`.
    pub fn view(&self) -> PreparedGraph<'_> {
        PreparedGraph {
            g: &self.g,
            caches: Arc::clone(&self.caches),
        }
    }

    /// Eagerly fill every cache (topological order, classification,
    /// completion times / critical path, reachability, transitive
    /// reduction), so subsequent solves through [`Self::view`] pay
    /// zero analysis cost — and subsequent [`Self::apply`] calls can
    /// repair every analysis locally. Returns `self` for chaining.
    pub fn warm(&self) -> &Self {
        let v = self.view();
        v.topo();
        let _ = v.sp_tree();
        // Fill ecl/reach explicitly: a snapshot-restored instance may
        // carry cp_weight/reduced without them, and the repair layer
        // needs both.
        let _ = self.caches.ecl(&self.g);
        v.critical_path_weight();
        let _ = self.caches.reach(&self.g);
        v.reduced();
        self
    }

    /// Apply an edit batch, producing a **new** prepared instance that
    /// keeps every analysis cache the edits cannot have dirtied and
    /// **locally repairs** the ones they did (copy-on-write: `self`
    /// and anything sharing its caches are untouched, so a daemon can
    /// patch an instance other requests are still solving against).
    ///
    /// Cache carryover and repair, by edit class (see
    /// [`crate::edit::EditEffect`]):
    ///
    /// * **weight-only** ([`GraphEdit::SetWeight`] throughout) — the
    ///   topological order, shape class, SP tree, reachability, and
    ///   transitive reduction all survive (the reduction's weights are
    ///   refreshed without re-running the reduction); completion times
    ///   and the critical path are repaired by a cone-bounded
    ///   relaxation seeded at the re-weighted tasks;
    /// * **edge edits** — every analysis is repaired within the edit's
    ///   cone: the topological order survives or is shifted locally
    ///   (Pearce–Kelly, [`analysis::repair_topo_order`]); the SP tree
    ///   is spliced ([`SpTree::splice`]: only the subtree spanning the
    ///   touched edge rebuilds); reachability and the transitive
    ///   reduction are repaired edge-locally
    ///   ([`analysis::repair_reduction`]); completion times relax
    ///   within the cone. A cache whose repair provably cannot apply
    ///   (e.g. the splice fails) is dropped and recomputes lazily —
    ///   repair can cost a fallback, never correctness;
    /// * **task additions/removals** — the id space changed; nothing
    ///   survives.
    ///
    /// The repaired analyses are **identical** to what a from-scratch
    /// rebuild computes (the reduction is unique, completion times are
    /// exact maxima, the spliced tree re-verifies against the edited
    /// edge set), so solves against a patched instance are bit-equal
    /// to solves against a rebuilt one. The once-only promise stays
    /// observable through [`crate::profiling`]: a patch followed by a
    /// solve recomputes **zero** full structural analyses, and
    /// `cone_nodes` accounts how far each repair actually reached.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use taskgraph::{edit::GraphEdit, generators, profiling, PreparedInstance};
    ///
    /// let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
    /// let inst = PreparedInstance::new(Arc::new(g));
    /// inst.warm();
    ///
    /// let before = profiling::counts();
    /// let patched = inst
    ///     .apply(&[GraphEdit::SetWeight { task: 1, weight: 5.0 }])
    ///     .unwrap();
    /// assert_eq!(patched.graph().weights()[1], 5.0);
    /// // Critical path was repaired within the edit's cone…
    /// assert_eq!(patched.view().critical_path_weight(), 10.0);
    /// assert_eq!(patched.view().shape(), inst.view().shape());
    /// // …and no full analysis pass ran again.
    /// let delta = profiling::counts() - before;
    /// assert_eq!(delta.topo_order, 0);
    /// assert_eq!(delta.classify, 0);
    /// assert_eq!(delta.sp_from_graph, 0);
    /// assert_eq!(delta.transitive_reduction, 0);
    /// ```
    pub fn apply(&self, edits: &[GraphEdit]) -> Result<PreparedInstance, EditError> {
        // Feed the cached order (when filled) into the edge-insertion
        // validity check, so patching never re-derives what the
        // instance already knows.
        let cached_order = self.caches.topo.get().map(Vec::as_slice);
        let (edited, effect) = edit::apply_edits_ordered(&self.g, edits, cached_order)?;
        let caches = Caches::default();
        if !effect.task_set_changed {
            // — topological order: carried, or already locally
            //   repaired by the edit layer.
            let order: Option<Vec<TaskId>> = if effect.topo_preserved {
                self.caches.topo.get().cloned()
            } else {
                effect.repaired_order
            };

            // — completion times / critical path: cone-bounded forward
            //   relaxation seeded at re-weighted tasks and the targets
            //   of changed edges.
            if let (Some(order), Some(old_ecl)) = (&order, self.caches.ecl.get()) {
                let mut seeds: Vec<usize> = effect.reweighted.clone();
                seeds.extend(
                    effect
                        .inserted_edges
                        .iter()
                        .chain(&effect.removed_edges)
                        .map(|&(_, v)| v),
                );
                seeds.sort_unstable();
                seeds.dedup();
                let ecl = analysis::repair_earliest_completion(
                    &edited,
                    edited.weights(),
                    order,
                    old_ecl,
                    &seeds,
                );
                let cp = ecl.iter().fold(0.0f64, |a, &b| a.max(b));
                let _ = caches.ecl.set(ecl);
                let _ = caches.cp_weight.set(cp);
            }

            if effect.weight_only {
                // Structure untouched: classification, reachability,
                // and the reduced edge set survive verbatim (the
                // reduction's weights are refreshed without re-running
                // the reduction — TaskGraph::new is plain construction,
                // no profiling bump).
                if let Some(c) = self.caches.class.get() {
                    let _ = caches.class.set(c.clone());
                }
                if let Some(r) = self.caches.reach.get() {
                    let _ = caches.reach.set(Arc::clone(r));
                }
                if let Some(r) = self.caches.reduced.get() {
                    let redges: Vec<(usize, usize)> =
                        r.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
                    let refreshed = TaskGraph::new(edited.weights().to_vec(), &redges)
                        .expect("reduction of a DAG stays a valid DAG under new weights");
                    let _ = caches.reduced.set(refreshed);
                }
            } else if let Some(order) = &order {
                // — classification: a cheap specific shape decides
                //   outright (keeping the verdict identical to a fresh
                //   classify); otherwise splice the SP tree around the
                //   touched region. A miss drops the cache.
                if let Some(s) = structure::specific_shape(&edited) {
                    let _ = caches.class.set((s, None));
                } else if let Some((Shape::SeriesParallel, Some(tree))) = self.caches.class.get() {
                    let touched: Vec<TaskId> = effect.touched.iter().map(|&i| TaskId(i)).collect();
                    if let Some(repaired) = tree.splice(&edited, order, &touched) {
                        let _ = caches.class.set((Shape::SeriesParallel, Some(repaired)));
                    }
                }

                // — reachability + transitive reduction: edge-local
                //   repair from the cached matrix (bootstrapped
                //   quietly from the pre-edit graph when a restored
                //   instance carries the reduction without it).
                let reach_base: Option<Arc<Vec<Vec<u64>>>> =
                    self.caches.reach.get().cloned().or_else(|| {
                        let old_order = self.caches.topo.get()?;
                        self.caches.reduced.get()?;
                        Some(Arc::new(analysis::reachability_ordered(&self.g, old_order)))
                    });
                if let (Some(reach0), Some(red0)) = (reach_base, self.caches.reduced.get()) {
                    let old_kept: std::collections::HashSet<(usize, usize)> =
                        red0.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
                    let mut sources: Vec<usize> = effect
                        .inserted_edges
                        .iter()
                        .chain(&effect.removed_edges)
                        .map(|&(u, _)| u)
                        .collect();
                    sources.sort_unstable();
                    sources.dedup();
                    let (reach, kept) =
                        analysis::repair_reduction(&edited, order, &reach0, &old_kept, &sources);
                    let _ = caches.reach.set(Arc::new(reach));
                    let repaired = TaskGraph::new(edited.weights().to_vec(), &kept)
                        .expect("repaired reduction of a DAG is a valid DAG");
                    let _ = caches.reduced.set(repaired);
                }
            }

            if let Some(order) = order {
                let _ = caches.topo.set(order);
            }
        }
        Ok(PreparedInstance {
            g: Arc::new(edited),
            caches: Arc::new(caches),
        })
    }

    /// Export every *currently filled* analysis cache as plain data,
    /// for a persistence layer to serialize (the service's disk store
    /// spills instances this way). Unfilled caches export as `None`
    /// and simply recompute lazily after [`Self::restore`].
    pub fn snapshot(&self) -> AnalysisSnapshot {
        AnalysisSnapshot {
            topo: self
                .caches
                .topo
                .get()
                .map(|t| t.iter().map(|id| id.0).collect()),
            class: self.caches.class.get().cloned(),
            cp_weight: self.caches.cp_weight.get().copied(),
            reduced_edges: self
                .caches
                .reduced
                .get()
                .map(|r| r.edges().iter().map(|&(u, v)| (u.0, v.0)).collect()),
        }
    }

    /// Rebuild an instance from a graph plus a previously exported
    /// [`AnalysisSnapshot`], pre-filling each cache the snapshot
    /// carries. Each field is cheaply sanity-checked against the graph
    /// (id ranges, lengths, DAG validity of the reduced edge set);
    /// anything inconsistent is silently dropped and recomputes lazily
    /// — a stale or hand-edited snapshot can cost time, never
    /// correctness.
    pub fn restore(g: Arc<TaskGraph>, snap: &AnalysisSnapshot) -> PreparedInstance {
        let n = g.n();
        let caches = Caches::default();
        if let Some(topo) = &snap.topo {
            let ids: Vec<TaskId> = topo.iter().map(|&i| TaskId(i)).collect();
            if topo.len() == n && analysis::is_topo_order(&g, &ids) {
                let _ = caches.topo.set(ids);
            }
        }
        if let Some((shape, tree)) = &snap.class {
            let leaves_ok = tree
                .as_ref()
                .is_none_or(|t| t.leaves().iter().all(|id| id.0 < n));
            if leaves_ok {
                let _ = caches.class.set((*shape, tree.clone()));
            }
        }
        if let Some(cp) = snap.cp_weight {
            if cp.is_finite() && cp > 0.0 {
                let _ = caches.cp_weight.set(cp);
            }
        }
        if let Some(redges) = &snap.reduced_edges {
            if redges.iter().all(|&(u, v)| u < n && v < n) {
                if let Ok(r) = TaskGraph::new(g.weights().to_vec(), redges) {
                    let _ = caches.reduced.set(r);
                }
            }
        }
        PreparedInstance {
            g,
            caches: Arc::new(caches),
        }
    }

    /// A coarse estimate of the resident size of the graph plus every
    /// *currently filled* cache, in bytes — the unit the service
    /// cache's byte budget is accounted in. It is an estimate (Vec
    /// headers and allocator slack are approximated), not a promise.
    pub fn approx_bytes(&self) -> usize {
        fn graph_bytes(g: &TaskGraph) -> usize {
            // weights + edge list + succ/pred adjacency (each edge
            // appears once in each) + per-task Vec headers.
            std::mem::size_of::<TaskGraph>() + 8 * g.n() + 16 * g.m() + 16 * g.m() + 48 * g.n()
        }
        let mut total = graph_bytes(&self.g);
        if let Some(t) = self.caches.topo.get() {
            total += 8 * t.len();
        }
        if let Some((_, tree)) = self.caches.class.get() {
            // SP tree: roughly one node per task plus internal nodes.
            if tree.is_some() {
                total += 64 * self.g.n();
            }
        }
        if let Some(r) = self.caches.reduced.get() {
            total += graph_bytes(r);
        }
        if let Some(e) = self.caches.ecl.get() {
            total += 8 * e.len();
        }
        if let Some(r) = self.caches.reach.get() {
            total += r.len() * (24 + 8 * r.first().map_or(0, Vec::len));
        }
        total + std::mem::size_of::<Self>()
    }
}

/// Plain-data export of a [`PreparedInstance`]'s filled analysis
/// caches — what [`PreparedInstance::snapshot`] returns and
/// [`PreparedInstance::restore`] consumes. Task ids travel as raw
/// `usize` indices so a persistence layer can serialize the snapshot
/// without knowing about [`TaskId`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSnapshot {
    /// The cached topological order, as task indices.
    pub topo: Option<Vec<usize>>,
    /// The cached shape classification and SP decomposition.
    pub class: Option<(Shape, Option<SpTree>)>,
    /// The cached critical-path weight.
    pub cp_weight: Option<f64>,
    /// The edge set of the cached transitive reduction (its weights
    /// are always the graph's own).
    pub reduced_edges: Option<Vec<(usize, usize)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::profiling;

    #[test]
    fn analysis_runs_at_most_once() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let prep = PreparedGraph::new(&g);
        let before = profiling::counts();
        for _ in 0..10 {
            assert_eq!(prep.shape(), Shape::SeriesParallel);
            assert!(prep.sp_tree().is_some());
            assert_eq!(prep.critical_path_weight(), 8.0);
            assert_eq!(prep.topo().len(), 4);
            assert_eq!(prep.reduced().m(), 4);
            let _ = prep.makespan(g.weights());
            let _ = prep.earliest_completion(g.weights());
            let _ = prep.latest_completion(g.weights(), 10.0);
        }
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 1, "topo order must be computed once");
        assert_eq!(delta.classify, 1, "classification must run once");
        assert_eq!(delta.sp_from_graph, 1, "SP recognition must run once");
    }

    #[test]
    fn cached_results_match_direct_analysis() {
        let g = crate::TaskGraph::new(
            vec![1.0, 2.0, 1.5, 3.0, 0.5],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4)],
        )
        .unwrap();
        let prep = PreparedGraph::new(&g);
        assert_eq!(prep.topo(), analysis::topo_order(&g));
        assert_eq!(prep.shape(), structure::classify(&g));
        assert_eq!(
            prep.critical_path_weight(),
            analysis::critical_path_weight(&g)
        );
        assert_eq!(
            prep.reduced().edges(),
            analysis::transitive_reduction(&g).edges()
        );
        let durs = vec![0.5; 5];
        assert_eq!(
            prep.earliest_completion(&durs),
            analysis::earliest_completion(&g, &durs)
        );
        assert_eq!(prep.makespan(&durs), analysis::makespan(&g, &durs));
    }

    #[test]
    fn owned_instance_views_share_one_analysis() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        let before = profiling::counts();
        inst.warm();
        // Ten fresh views, each exercising every cache: the warm()
        // above paid for everything; no view re-analyzes.
        for _ in 0..10 {
            let v = inst.view();
            assert_eq!(v.shape(), Shape::SeriesParallel);
            assert_eq!(v.critical_path_weight(), 8.0);
            assert_eq!(v.topo().len(), 4);
            assert_eq!(v.reduced().m(), 4);
        }
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 1);
        assert_eq!(delta.classify, 1);
        assert_eq!(delta.sp_from_graph, 1);
        // Warm instance accounts for the filled caches.
        assert!(inst.approx_bytes() > std::mem::size_of::<PreparedInstance>());
    }

    #[test]
    fn weight_only_apply_recomputes_no_structure() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let before = profiling::counts();
        let patched = inst
            .apply(&[GraphEdit::SetWeight {
                task: 2,
                weight: 6.0,
            }])
            .unwrap();
        // All structural caches answer without recomputation…
        assert_eq!(patched.view().shape(), Shape::SeriesParallel);
        assert_eq!(patched.view().topo().len(), 4);
        assert_eq!(patched.view().reduced().m(), 4);
        // …the reduction carries the *new* weights…
        assert_eq!(
            patched.view().reduced().weights(),
            patched.graph().weights()
        );
        // …and the critical path reflects the edit (1 + 6 + 4).
        assert_eq!(patched.view().critical_path_weight(), 11.0);
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 0, "topo order must be carried");
        assert_eq!(delta.classify, 0, "classification must be carried");
        assert_eq!(delta.sp_from_graph, 0, "SP tree must be carried");
        assert_eq!(delta.transitive_reduction, 0, "reduction must be carried");
    }

    #[test]
    fn edge_removal_repairs_structure_locally() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let before = profiling::counts();
        let patched = inst
            .apply(&[GraphEdit::RemoveEdge { from: 0, to: 2 }])
            .unwrap();
        let _ = patched.view().topo();
        // Removing 0→2 leaves 0→1→3 ← 2: an in-tree. The cheap shape
        // cascade decides — no classify pass, no SP recognition — and
        // the reduction is repaired from the cached reachability.
        assert_eq!(patched.view().shape(), Shape::InTree);
        assert_eq!(patched.view().reduced().m(), 3);
        // Longest path is now 0→1→3 (1 + 2 + 4).
        assert_eq!(patched.view().critical_path_weight(), 7.0);
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 0, "old order is valid after removal");
        assert_eq!(delta.classify, 0, "shape decided without a classify pass");
        assert_eq!(delta.sp_from_graph, 0);
        assert_eq!(delta.transitive_reduction, 0, "reduction repaired locally");
        // The repaired caches agree with a from-scratch analysis.
        let fresh = PreparedGraph::new(patched.graph());
        assert_eq!(patched.view().shape(), fresh.shape());
        assert_eq!(patched.view().reduced().edges(), fresh.reduced().edges());
        assert_eq!(
            patched.view().critical_path_weight(),
            fresh.critical_path_weight()
        );
    }

    #[test]
    fn sp_preserving_edit_splices_tree() {
        // Two diamond blocks in series:
        //   0 → {1,2} → 3 → {4,5} → 6
        // Convert the second block's parallel pair to a series chain
        // (remove 3→5 and 4→6, insert 4→5): still series–parallel,
        // with the same region interface — the splice rebuilds only
        // the second block's subtree.
        let g = crate::TaskGraph::new(
            vec![1.0; 7],
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .unwrap();
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        assert_eq!(inst.view().shape(), Shape::SeriesParallel);
        let before = profiling::counts();
        let patched = inst
            .apply(&[
                GraphEdit::RemoveEdge { from: 3, to: 5 },
                GraphEdit::RemoveEdge { from: 4, to: 6 },
                GraphEdit::InsertEdge { from: 4, to: 5 },
            ])
            .unwrap();
        assert_eq!(patched.view().shape(), Shape::SeriesParallel);
        let delta = profiling::counts() - before;
        assert_eq!(delta.sp_splice, 1, "the tree was spliced");
        assert_eq!(delta.sp_splice_miss, 0);
        assert_eq!(delta.classify, 0, "no classify pass ran");
        assert_eq!(delta.sp_from_graph, 0, "no full SP recognition ran");
        assert_eq!(delta.transitive_reduction, 0);
        assert_eq!(delta.topo_order, 0);
        assert!(delta.cone_nodes > 0, "repairs account their cone");
        // The spliced tree is exactly what a fresh recognition builds.
        let fresh = PreparedGraph::new(patched.graph());
        assert_eq!(patched.view().sp_tree(), fresh.sp_tree());
        assert_eq!(patched.view().reduced().edges(), fresh.reduced().edges());
        assert_eq!(
            patched.view().critical_path_weight(),
            fresh.critical_path_weight()
        );
    }

    #[test]
    fn sp_breaking_edit_falls_back_lazily() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let before = profiling::counts();
        // 1→2 makes 0→2 and the new path transitive: node-SP breaks.
        let patched = inst
            .apply(&[GraphEdit::InsertEdge { from: 1, to: 2 }])
            .unwrap();
        let _ = patched.view().topo();
        let _ = patched.view().reduced();
        let delta = profiling::counts() - before;
        assert_eq!(delta.sp_splice_miss, 1, "splice correctly refuses");
        assert_eq!(delta.topo_order, 0);
        assert_eq!(delta.transitive_reduction, 0, "reduction repaired locally");
        // The classification dropped and recomputes lazily — matching
        // a fresh analysis — while order/reduction stayed repaired.
        let fresh = PreparedGraph::new(patched.graph());
        assert_eq!(patched.view().shape(), fresh.shape());
        assert_eq!(patched.view().reduced().edges(), fresh.reduced().edges());
    }

    #[test]
    fn task_edits_drop_everything() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let before = profiling::counts();
        let patched = inst
            .apply(&[GraphEdit::AddTask {
                weight: 2.0,
                preds: vec![3],
                succs: vec![],
            }])
            .unwrap();
        assert_eq!(patched.graph().n(), 5);
        let _ = patched.view().topo();
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 1, "id space changed: order recomputed");
        // The base instance is untouched.
        assert_eq!(inst.graph().n(), 4);
        assert_eq!(inst.view().critical_path_weight(), 8.0);
    }

    #[test]
    fn apply_equals_rebuild_for_every_view() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        let edits = [
            GraphEdit::SetWeight {
                task: 1,
                weight: 4.5,
            },
            GraphEdit::InsertEdge { from: 1, to: 2 },
        ];
        let patched = inst.apply(&edits).unwrap();
        let (rebuilt, _) = crate::edit::apply_edits(&g, &edits).unwrap();
        let fresh = PreparedGraph::new(&rebuilt);
        assert_eq!(patched.graph(), &rebuilt);
        assert_eq!(patched.view().topo(), fresh.topo());
        assert_eq!(patched.view().shape(), fresh.shape());
        assert_eq!(
            patched.view().critical_path_weight(),
            fresh.critical_path_weight()
        );
        assert_eq!(patched.view().reduced().edges(), fresh.reduced().edges());
    }

    #[test]
    fn snapshot_restore_round_trips_warm_analysis() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let snap = inst.snapshot();
        assert!(snap.topo.is_some());
        assert!(snap.class.is_some());
        assert!(snap.cp_weight.is_some());
        assert!(snap.reduced_edges.is_some());

        let restored = PreparedInstance::restore(inst.graph_arc(), &snap);
        let before = profiling::counts();
        assert_eq!(restored.view().shape(), Shape::SeriesParallel);
        assert_eq!(restored.view().critical_path_weight(), 8.0);
        assert_eq!(restored.view().topo(), inst.view().topo());
        assert_eq!(
            restored.view().reduced().edges(),
            inst.view().reduced().edges()
        );
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 0, "restored instance re-analyzes nothing");
        assert_eq!(delta.classify, 0);
        assert_eq!(delta.transitive_reduction, 0);
        // Round trip again: snapshots are stable.
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn restore_drops_inconsistent_snapshot_fields() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let mut snap = inst.snapshot();
        // Corrupt every field in a way cheap validation must catch.
        snap.topo = Some(vec![3, 2, 1, 0]); // reversed: not a topo order
        snap.cp_weight = Some(f64::NAN);
        snap.reduced_edges = Some(vec![(0, 9)]); // out of range
        let restored = PreparedInstance::restore(inst.graph_arc(), &snap);
        // Nothing panics and every answer is still correct (recomputed).
        assert_eq!(restored.view().critical_path_weight(), 8.0);
        assert_eq!(restored.view().topo().len(), 4);
        assert_eq!(restored.view().reduced().m(), 4);
    }

    #[test]
    fn owned_instance_is_shareable_across_threads() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let inst = Arc::new(PreparedInstance::new(Arc::new(g)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let inst = Arc::clone(&inst);
                s.spawn(move || {
                    let v = inst.view();
                    assert_eq!(v.shape(), Shape::SeriesParallel);
                    assert!(v.critical_path_weight() > 0.0);
                });
            }
        });
    }

    #[test]
    fn shared_across_threads() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let prep = PreparedGraph::new(&g);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(prep.shape(), Shape::SeriesParallel);
                    assert!(prep.critical_path_weight() > 0.0);
                });
            }
        });
    }
}
