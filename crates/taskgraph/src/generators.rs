//! Workload generators for every graph family in the experiment suite.
//!
//! All random generators take an explicit `rng` so experiments are
//! reproducible from a seed; weights are drawn uniformly from a caller
//! supplied range.

use crate::graph::TaskGraph;
use crate::sp::{SpShape, SpTree};
use rand::Rng;

/// A chain `T_0 → … → T_{n−1}` with the given weights.
pub fn chain(weights: &[f64]) -> TaskGraph {
    let edges: Vec<(usize, usize)> = (1..weights.len()).map(|i| (i - 1, i)).collect();
    TaskGraph::new(weights.to_vec(), &edges).expect("chain is a DAG")
}

/// A fork: source `T_0` (cost `w0`) followed by `children.len()`
/// independent leaves — the graph of Theorem 1.
pub fn fork(w0: f64, children: &[f64]) -> TaskGraph {
    let mut w = vec![w0];
    w.extend_from_slice(children);
    let edges: Vec<(usize, usize)> = (1..w.len()).map(|i| (0, i)).collect();
    TaskGraph::new(w, &edges).expect("fork is a DAG")
}

/// A join: `parents.len()` independent tasks feeding a sink of cost
/// `w_sink` (the mirror of a fork).
pub fn join(parents: &[f64], w_sink: f64) -> TaskGraph {
    fork(w_sink, parents).reversed()
}

/// A fork-join: source, `mid.len()` parallel middle tasks, sink.
pub fn fork_join(w0: f64, mid: &[f64], w_sink: f64) -> TaskGraph {
    let mut w = vec![w0];
    w.extend_from_slice(mid);
    w.push(w_sink);
    let sink = w.len() - 1;
    let mut edges = Vec::new();
    for i in 1..sink {
        edges.push((0, i));
        edges.push((i, sink));
    }
    TaskGraph::new(w, &edges).expect("fork-join is a DAG")
}

/// The 4-task diamond `0 → {1, 2} → 3`.
pub fn diamond(w: [f64; 4]) -> TaskGraph {
    TaskGraph::new(w.to_vec(), &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("diamond is a DAG")
}

/// Uniform random weights in `[lo, hi)`.
pub fn random_weights<R: Rng>(n: usize, lo: f64, hi: f64, rng: &mut R) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "weights must be positive");
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A uniformly random out-tree on `n` nodes: node `i ≥ 1` attaches to a
/// uniform parent among `0..i` (random recursive tree), with weights in
/// `[lo, hi)`.
pub fn random_out_tree<R: Rng>(n: usize, lo: f64, hi: f64, rng: &mut R) -> TaskGraph {
    assert!(n >= 1);
    let w = random_weights(n, lo, hi, rng);
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (rng.gen_range(0..i), i)).collect();
    TaskGraph::new(w, &edges).expect("recursive tree is a DAG")
}

/// A uniformly random in-tree on `n` nodes (the reversal of a random
/// recursive out-tree): every non-root task has exactly one successor.
pub fn random_in_tree<R: Rng>(n: usize, lo: f64, hi: f64, rng: &mut R) -> TaskGraph {
    random_out_tree(n, lo, hi, rng).reversed()
}

/// A random layered DAG: `layers` layers of `width` tasks; each task in
/// layer `ℓ+1` receives an edge from each task of layer `ℓ` with
/// probability `p_edge`, plus one guaranteed incoming edge (so that the
/// depth really is `layers`). Weights in `[lo, hi)`.
///
/// This is the workhorse random family for the comparative experiments
/// (F1–F3): it produces graphs that are neither trees nor SP with high
/// probability, exercising the general (numerical) solver.
pub fn layered_dag<R: Rng>(
    layers: usize,
    width: usize,
    p_edge: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> TaskGraph {
    assert!(layers >= 1 && width >= 1);
    let n = layers * width;
    let w = random_weights(n, lo, hi, rng);
    let mut edges = Vec::new();
    for l in 1..layers {
        for j in 0..width {
            let v = l * width + j;
            let mut has_pred = false;
            for i in 0..width {
                let u = (l - 1) * width + i;
                if rng.gen_bool(p_edge) {
                    edges.push((u, v));
                    has_pred = true;
                }
            }
            if !has_pred {
                let u = (l - 1) * width + rng.gen_range(0..width);
                edges.push((u, v));
            }
        }
    }
    TaskGraph::new(w, &edges).expect("layered construction is a DAG")
}

/// A random Erdős–Rényi-style DAG: edge `(i, j)` for `i < j` present
/// with probability `p`. Sparse and unstructured; mostly non-SP.
pub fn random_dag<R: Rng>(n: usize, p: f64, lo: f64, hi: f64, rng: &mut R) -> TaskGraph {
    let w = random_weights(n, lo, hi, rng);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                edges.push((i, j));
            }
        }
    }
    TaskGraph::new(w, &edges).expect("ordered random edges form a DAG")
}

/// A random series–parallel graph with `n` tasks. Recursively splits
/// the task budget and picks series with probability `series_bias`.
/// Returns both the graph and its decomposition tree.
pub fn random_sp<R: Rng>(
    n: usize,
    series_bias: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> (TaskGraph, SpTree) {
    let shape = random_sp_shape(n, series_bias, lo, hi, rng);
    shape.build()
}

fn random_sp_shape<R: Rng>(n: usize, series_bias: f64, lo: f64, hi: f64, rng: &mut R) -> SpShape {
    assert!(n >= 1);
    if n == 1 {
        return SpShape::Leaf(rng.gen_range(lo..hi));
    }
    let k = rng.gen_range(1..n); // left part size
    let left = random_sp_shape(k, series_bias, lo, hi, rng);
    let right = random_sp_shape(n - k, series_bias, lo, hi, rng);
    if rng.gen_bool(series_bias) {
        SpShape::Series(vec![left, right])
    } else {
        SpShape::Parallel(vec![left, right])
    }
}

/// The PARTITION-style hard instance for the Discrete model
/// (Theorem 4 evidence).
///
/// A chain of `values.len()` tasks with weights `values`, two modes
/// `{1, 2}`, and deadline `D = (3/4)·Σ values`. Meeting `D` requires a
/// subset `F` run at speed 2 with `Σ_{i∈F} w_i ≥ Σw/2`, and the energy
/// is minimized exactly when `Σ_{i∈F} w_i = Σw/2` — i.e. when `values`
/// admits a perfect partition. Branch-and-bound must implicitly search
/// the subset space, which blows up on balanced random instances.
pub fn partition_chain(values: &[f64]) -> (TaskGraph, f64) {
    let g = chain(values);
    let d = 0.75 * values.iter().sum::<f64>();
    (g, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{critical_path_weight, topo_order};
    use crate::structure::{classify, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let g = chain(&[1.0, 2.0, 3.0]);
        assert_eq!(classify(&g), Shape::Chain);
        assert_eq!(critical_path_weight(&g), 6.0);
    }

    #[test]
    fn fork_and_join_shapes() {
        let f = fork(1.0, &[2.0, 3.0, 4.0]);
        assert_eq!(classify(&f), Shape::Fork);
        assert_eq!(critical_path_weight(&f), 5.0);
        let j = join(&[2.0, 3.0, 4.0], 1.0);
        assert_eq!(classify(&j), Shape::Join);
        assert_eq!(critical_path_weight(&j), 5.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(1.0, &[2.0, 5.0], 1.0);
        assert_eq!(g.n(), 4);
        assert_eq!(critical_path_weight(&g), 7.0);
        assert_eq!(classify(&g), Shape::SeriesParallel);
    }

    #[test]
    fn random_tree_is_out_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 40] {
            let g = random_out_tree(n, 1.0, 10.0, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n - 1);
            assert!(crate::structure::is_out_tree(&g));
        }
    }

    #[test]
    fn random_in_tree_is_in_tree() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [2usize, 6, 25] {
            let g = random_in_tree(n, 1.0, 3.0, &mut rng);
            assert!(crate::structure::is_in_tree(&g));
            assert_eq!(g.sinks().len(), 1);
        }
    }

    #[test]
    fn layered_dag_has_expected_depth() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = layered_dag(5, 4, 0.3, 1.0, 2.0, &mut rng);
        assert_eq!(g.n(), 20);
        // Every layer adds at least one edge per node, so the longest
        // chain has exactly 5 nodes.
        let depth = {
            let mut d = vec![0usize; g.n()];
            for &t in &topo_order(&g) {
                d[t.0] = 1 + g.preds(t).iter().map(|p| d[p.0]).max().unwrap_or(0);
            }
            d.into_iter().max().unwrap()
        };
        assert_eq!(depth, 5);
    }

    #[test]
    fn random_dag_is_acyclic_and_seeded() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let g1 = random_dag(30, 0.15, 1.0, 5.0, &mut a);
        let g2 = random_dag(30, 0.15, 1.0, 5.0, &mut b);
        assert_eq!(g1, g2, "same seed must reproduce the same graph");
    }

    #[test]
    fn random_sp_is_recognized() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 7, 25] {
            let (g, tree) = random_sp(n, 0.5, 1.0, 4.0, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(tree.len(), n);
            assert!(
                crate::sp::SpTree::from_graph(&g).is_some(),
                "generated SP graph must be recognized (n={n})"
            );
        }
    }

    #[test]
    fn partition_chain_deadline() {
        let (g, d) = partition_chain(&[2.0, 2.0, 4.0, 4.0]);
        assert_eq!(g.n(), 4);
        assert!((d - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn random_weights_reject_nonpositive_lo() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_weights(3, 0.0, 1.0, &mut rng);
    }
}
