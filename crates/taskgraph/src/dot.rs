//! Graphviz DOT export for visual inspection of execution graphs.

use crate::graph::TaskGraph;

/// Render the graph in DOT format. Node labels show the task id and
/// its cost; an optional per-task annotation (e.g. the chosen speed)
/// can be appended by [`to_dot_with`].
pub fn to_dot(g: &TaskGraph) -> String {
    to_dot_with(g, |_| None)
}

/// DOT export with a per-task extra label line produced by `annot`
/// (return `None` for no annotation).
pub fn to_dot_with<F>(g: &TaskGraph, annot: F) -> String
where
    F: Fn(usize) -> Option<String>,
{
    let mut out = String::from("digraph execution {\n  rankdir=TB;\n  node [shape=box];\n");
    for t in g.tasks() {
        let mut label = format!("T{} | w={:.3}", t.0, g.weight(t));
        if let Some(extra) = annot(t.0) {
            label.push_str("\\n");
            label.push_str(&extra);
        }
        out.push_str(&format!("  t{} [label=\"{}\"];\n", t.0, label));
    }
    for &(u, v) in g.edges() {
        out.push_str(&format!("  t{} -> t{};\n", u.0, v.0));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let dot = to_dot(&g);
        for i in 0..4 {
            assert!(dot.contains(&format!("t{i} [label=")));
        }
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t2 -> t3;"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn annotations_are_appended() {
        let g = generators::chain(&[1.0, 2.0]);
        let dot = to_dot_with(&g, |i| Some(format!("s={i}")));
        assert!(dot.contains("s=0"));
        assert!(dot.contains("s=1"));
    }
}
