//! Core DAG data structure.

use std::fmt;

/// Index of a task in a [`TaskGraph`].
///
/// Task ids are dense (`0..n`) and stable: generators and the `mapping`
/// crate never renumber tasks, so a `TaskId` can be used to key
/// per-task vectors (speeds, durations, completion times) everywhere in
/// the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Errors produced when building or mutating a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a task id `>= n`.
    BadTask(usize),
    /// A self-loop `(i, i)` was added.
    SelfLoop(usize),
    /// The edge set contains a directed cycle (first detected node).
    Cycle(usize),
    /// A task cost is not strictly positive and finite.
    BadWeight { task: usize, weight: f64 },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadTask(i) => write!(f, "edge references unknown task T{i}"),
            GraphError::SelfLoop(i) => write!(f, "self-loop on task T{i}"),
            GraphError::Cycle(i) => write!(f, "directed cycle through task T{i}"),
            GraphError::BadWeight { task, weight } => {
                write!(f, "task T{task} has invalid cost {weight}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic **execution graph** with per-task costs.
///
/// Tasks are numbered `0..n`. Each task `i` carries a cost `w_i > 0`
/// (the amount of work: executing at speed `s` takes `w_i / s` time
/// units). Edges are precedence constraints: `(i, j)` means `T_j`
/// cannot start before `T_i` completes.
///
/// The structure is immutable once built (all solvers treat the
/// mapping, and hence the execution graph, as frozen — that is the
/// paper's core assumption).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    weights: Vec<f64>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
    edges: Vec<(TaskId, TaskId)>,
}

impl TaskGraph {
    /// Build a graph from task costs and precedence edges.
    ///
    /// Validates weights (strictly positive, finite), edge endpoints,
    /// absence of self-loops and duplicate edges (duplicates are
    /// silently collapsed), and acyclicity.
    ///
    /// ```
    /// use taskgraph::TaskGraph;
    /// let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
    /// assert_eq!(g.n(), 2);
    /// assert!(TaskGraph::new(vec![1.0, 2.0], &[(0, 1), (1, 0)]).is_err());
    /// ```
    pub fn new(weights: Vec<f64>, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let n = weights.len();
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::BadWeight { task: i, weight: w });
            }
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut uniq = std::collections::HashSet::with_capacity(edges.len());
        let mut elist = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::BadTask(u));
            }
            if v >= n {
                return Err(GraphError::BadTask(v));
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if uniq.insert((u, v)) {
                succs[u].push(TaskId(v));
                preds[v].push(TaskId(u));
                elist.push((TaskId(u), TaskId(v)));
            }
        }
        let g = TaskGraph {
            weights,
            succs,
            preds,
            edges: elist,
        };
        if let Some(c) = g.find_cycle_node() {
            return Err(GraphError::Cycle(c));
        }
        Ok(g)
    }

    /// A single-task graph (convenience for tests and SP leaves).
    pub fn single(weight: f64) -> Self {
        TaskGraph::new(vec![weight], &[]).expect("single task is always a valid graph")
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Number of precedence edges `|Ê|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Cost `w_i` of a task.
    #[inline]
    pub fn weight(&self, t: TaskId) -> f64 {
        self.weights[t.0]
    }

    /// All task costs, indexed by `TaskId`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total work `Σ w_i`.
    pub fn total_work(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Successors of `t` (tasks that must wait for `t`).
    #[inline]
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.0]
    }

    /// Predecessors of `t`.
    #[inline]
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.0]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Iterator over all task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n()).map(TaskId)
    }

    /// Tasks with no predecessor.
    pub fn sources(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.preds(t).is_empty()).collect()
    }

    /// Tasks with no successor.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.succs(t).is_empty()).collect()
    }

    /// Whether edge `(u, v)` is present.
    pub fn has_edge(&self, u: TaskId, v: TaskId) -> bool {
        self.succs[u.0].contains(&v)
    }

    /// Returns a graph with the same tasks and every edge reversed.
    ///
    /// Useful for treating in-trees (join-like) with out-tree
    /// algorithms: `MinEnergy` is invariant under edge reversal
    /// (reversing time preserves both the precedence structure and the
    /// energy of any schedule).
    pub fn reversed(&self) -> TaskGraph {
        let edges: Vec<(usize, usize)> = self.edges.iter().map(|&(u, v)| (v.0, u.0)).collect();
        TaskGraph::new(self.weights.clone(), &edges).expect("reversing a DAG yields a DAG")
    }

    /// Returns a new graph equal to `self` plus the given extra edges
    /// (used by the `mapping` crate to add serialization edges).
    pub fn with_extra_edges(&self, extra: &[(usize, usize)]) -> Result<TaskGraph, GraphError> {
        let mut edges: Vec<(usize, usize)> = self.edges.iter().map(|&(u, v)| (u.0, v.0)).collect();
        edges.extend_from_slice(extra);
        TaskGraph::new(self.weights.clone(), &edges)
    }

    /// Kahn's algorithm; returns `Some(node-in-cycle)` when the edge
    /// set is cyclic, `None` for a DAG.
    fn find_cycle_node(&self) -> Option<usize> {
        let n = self.n();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &TaskId(v) in &self.succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen == n {
            None
        } else {
            (0..n).find(|&i| indeg[i] > 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // 0 -> {1,2} -> 3
        TaskGraph::new(vec![1.0, 2.0, 3.0, 4.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn builds_and_exposes_structure() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
        assert_eq!(g.succs(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.preds(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert!((g.total_work() - 10.0).abs() < 1e-12);
        assert!(g.has_edge(TaskId(0), TaskId(1)));
        assert!(!g.has_edge(TaskId(1), TaskId(0)));
    }

    #[test]
    fn rejects_cycles() {
        let err = TaskGraph::new(vec![1.0; 3], &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::Cycle(_)));
    }

    #[test]
    fn rejects_self_loop_and_bad_endpoints() {
        assert!(matches!(
            TaskGraph::new(vec![1.0; 2], &[(0, 0)]),
            Err(GraphError::SelfLoop(0))
        ));
        assert!(matches!(
            TaskGraph::new(vec![1.0; 2], &[(0, 5)]),
            Err(GraphError::BadTask(5))
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                TaskGraph::new(vec![1.0, w], &[]),
                Err(GraphError::BadWeight { task: 1, .. })
            ));
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = TaskGraph::new(vec![1.0; 2], &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn reversal_is_involutive_and_swaps_roles() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.sources(), vec![TaskId(3)]);
        assert_eq!(r.sinks(), vec![TaskId(0)]);
        let rr = r.reversed();
        assert_eq!(rr.n(), g.n());
        for t in g.tasks() {
            let mut a = g.succs(t).to_vec();
            let mut b = rr.succs(t).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn with_extra_edges_adds_serialization() {
        let g = diamond();
        let g2 = g.with_extra_edges(&[(1, 2)]).unwrap();
        assert_eq!(g2.m(), 5);
        assert!(g2.has_edge(TaskId(1), TaskId(2)));
        // Adding an edge that would create a cycle fails.
        assert!(g2.with_extra_edges(&[(3, 0)]).is_err());
    }

    #[test]
    fn single_task_graph() {
        let g = TaskGraph::single(5.0);
        assert_eq!(g.n(), 1);
        assert_eq!(g.sources(), g.sinks());
    }
}
