//! Classic structured task graphs from the scheduling literature.
//!
//! These are the workloads the energy-aware-scheduling literature
//! (including the companion research report's simulation studies)
//! evaluates on: FFT butterflies, tiled LU/Gaussian elimination,
//! stencil sweeps, and divide-and-conquer trees. All generators are
//! deterministic given their size parameters; weights model the
//! per-task flop counts of the usual implementations.

use crate::graph::TaskGraph;

/// Recursive FFT task graph with `2^levels` inputs.
///
/// Layout: `levels + 1` rows of `2^levels` butterfly tasks; task `j`
/// of row `r + 1` depends on tasks `j` and `j XOR 2^r` of row `r`
/// (the classic butterfly pattern). All tasks have unit weight
/// (butterflies cost Θ(1)).
pub fn fft(levels: u32) -> TaskGraph {
    assert!((1..=12).contains(&levels), "fft size out of range");
    let width = 1usize << levels;
    let rows = levels as usize + 1;
    let id = |r: usize, j: usize| r * width + j;
    let mut edges = Vec::new();
    for r in 0..levels as usize {
        let stride = 1usize << r;
        for j in 0..width {
            edges.push((id(r, j), id(r + 1, j)));
            edges.push((id(r, j ^ stride), id(r + 1, j)));
        }
    }
    TaskGraph::new(vec![1.0; rows * width], &edges).expect("fft butterfly is a DAG")
}

/// Tiled LU factorization (right-looking, no pivoting) on a `t × t`
/// tile grid.
///
/// Tasks per step `k`: one `getrf(k)` (weight `w_diag`), `t−k−1` panel
/// solves `trsm(k, j)` each depending on `getrf(k)` (weight `w_panel`),
/// and `(t−k−1)²` updates `gemm(k, i, j)` depending on the two
/// covering `trsm`s (weight `w_update`); `getrf(k+1)` and step-`k+1`
/// tasks depend on the step-`k` updates that touch their tile.
pub fn lu(tiles: usize) -> TaskGraph {
    assert!((2..=16).contains(&tiles), "lu tile count out of range");
    let (w_diag, w_panel, w_update) = (1.0, 2.0, 3.0);
    let mut weights = Vec::new();
    let mut edges = Vec::new();
    // owner[i][j] = task that last wrote tile (i, j).
    let mut owner = vec![vec![usize::MAX; tiles]; tiles];
    let new_task = |w: f64, weights: &mut Vec<f64>| -> usize {
        weights.push(w);
        weights.len() - 1
    };
    for k in 0..tiles {
        let getrf = new_task(w_diag, &mut weights);
        if owner[k][k] != usize::MAX {
            edges.push((owner[k][k], getrf));
        }
        owner[k][k] = getrf;
        // Row and column panels.
        let mut row_trsm = vec![usize::MAX; tiles];
        let mut col_trsm = vec![usize::MAX; tiles];
        for j in (k + 1)..tiles {
            let t_row = new_task(w_panel, &mut weights);
            edges.push((getrf, t_row));
            if owner[k][j] != usize::MAX {
                edges.push((owner[k][j], t_row));
            }
            owner[k][j] = t_row;
            row_trsm[j] = t_row;

            let t_col = new_task(w_panel, &mut weights);
            edges.push((getrf, t_col));
            if owner[j][k] != usize::MAX {
                edges.push((owner[j][k], t_col));
            }
            owner[j][k] = t_col;
            col_trsm[j] = t_col;
        }
        // Trailing updates.
        for i in (k + 1)..tiles {
            for j in (k + 1)..tiles {
                let gemm = new_task(w_update, &mut weights);
                edges.push((col_trsm[i], gemm));
                edges.push((row_trsm[j], gemm));
                if owner[i][j] != usize::MAX {
                    edges.push((owner[i][j], gemm));
                }
                owner[i][j] = gemm;
            }
        }
    }
    TaskGraph::new(weights, &edges).expect("tiled LU is a DAG")
}

/// A 2-D stencil (Laplace / Gauss–Seidel wavefront) sweep on an
/// `rows × cols` grid: task `(i, j)` depends on `(i−1, j)` and
/// `(i, j−1)`. Unit weights.
pub fn stencil(rows: usize, cols: usize) -> TaskGraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols <= 1 << 20);
    let id = |i: usize, j: usize| i * cols + j;
    let mut edges = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if i > 0 {
                edges.push((id(i - 1, j), id(i, j)));
            }
            if j > 0 {
                edges.push((id(i, j - 1), id(i, j)));
            }
        }
    }
    TaskGraph::new(vec![1.0; rows * cols], &edges).expect("stencil wavefront is a DAG")
}

/// Divide-and-conquer graph (Strassen-like): a `branch`-ary divide
/// out-tree of the given `depth`, mirrored by a conquer in-tree.
/// Divide/merge tasks cost `w_split`; the `branch^depth` leaves cost
/// `w_leaf` each.
pub fn divide_and_conquer(depth: u32, branch: usize, w_split: f64, w_leaf: f64) -> TaskGraph {
    assert!(branch >= 2 && depth >= 1 && branch.pow(depth) <= 1 << 16);
    let mut weights = Vec::new();
    let mut edges = Vec::new();
    // Build recursively; returns (entry, exit) task ids of the block.
    fn build(
        depth: u32,
        branch: usize,
        w_split: f64,
        w_leaf: f64,
        weights: &mut Vec<f64>,
        edges: &mut Vec<(usize, usize)>,
    ) -> (usize, usize) {
        if depth == 0 {
            weights.push(w_leaf);
            let leaf = weights.len() - 1;
            return (leaf, leaf);
        }
        weights.push(w_split);
        let split = weights.len() - 1;
        weights.push(w_split);
        let merge = weights.len() - 1;
        for _ in 0..branch {
            let (entry, exit) = build(depth - 1, branch, w_split, w_leaf, weights, edges);
            edges.push((split, entry));
            edges.push((exit, merge));
        }
        (split, merge)
    }
    build(depth, branch, w_split, w_leaf, &mut weights, &mut edges);
    TaskGraph::new(weights, &edges).expect("divide-and-conquer is a DAG")
}

/// Gaussian-elimination dependency graph on `n` columns (the classic
/// `GE(n)` example): pivot task `p_k` enables update tasks
/// `u_{k,j}` for `j > k`, and `u_{k,k+1}` enables `p_{k+1}`.
#[allow(clippy::needless_range_loop)] // `update[k][j]`/`update[k-1][j]` pairs read clearest indexed
pub fn gaussian_elimination(n: usize) -> TaskGraph {
    assert!((2..=60).contains(&n));
    let mut weights = Vec::new();
    let mut edges = Vec::new();
    let mut pivot_of = vec![usize::MAX; n];
    let mut update = vec![vec![usize::MAX; n]; n];
    for k in 0..n - 1 {
        weights.push(1.0); // pivot p_k
        let p = weights.len() - 1;
        pivot_of[k] = p;
        if k > 0 {
            edges.push((update[k - 1][k], p));
        }
        for j in (k + 1)..n {
            weights.push(2.0); // update u_{k,j}
            let u = weights.len() - 1;
            update[k][j] = u;
            edges.push((p, u));
            if k > 0 {
                edges.push((update[k - 1][j], u));
            }
        }
    }
    TaskGraph::new(weights, &edges).expect("GE(n) is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{critical_path_weight, topo_order};
    use crate::structure::{classify, Shape};

    #[test]
    fn fft_shape() {
        let g = fft(3);
        assert_eq!(g.n(), 4 * 8);
        // Each non-input row has 2 incoming edges per task, dedup for
        // stride crossing itself never happens (j != j^stride).
        assert_eq!(g.m(), 3 * 8 * 2);
        // Depth = levels + 1 at unit weights.
        assert_eq!(critical_path_weight(&g), 4.0);
        assert_eq!(classify(&g), Shape::General);
        assert_eq!(topo_order(&g).len(), g.n());
    }

    #[test]
    fn lu_task_count() {
        // t = 3: k=0: 1 + 2·2 + 4; k=1: 1 + 2·1 + 1; k=2: 1 → 14.
        let g = lu(3);
        assert_eq!(g.n(), 14);
        assert_eq!(g.sources().len(), 1, "getrf(0) is the unique source");
        // Final getrf is the unique sink.
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn stencil_wavefront() {
        let g = stencil(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 2 * 3 * 4 - 3 - 4);
        // Critical path = rows + cols − 1 at unit weights.
        assert_eq!(critical_path_weight(&g), 6.0);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn dac_is_series_parallel() {
        let g = divide_and_conquer(2, 2, 1.0, 4.0);
        // 2 levels of (split+merge) pairs: 1+1 + 2·(1+1) + 4 leaves = 10.
        assert_eq!(g.n(), 10);
        assert_eq!(classify(&g), Shape::SeriesParallel);
        // cp: split, split, leaf, merge, merge = 1+1+4+1+1.
        assert_eq!(critical_path_weight(&g), 8.0);
    }

    #[test]
    fn ge_structure() {
        let g = gaussian_elimination(4);
        // k=0: p + 3u; k=1: p + 2u; k=2: p + 1u → 9 tasks.
        assert_eq!(g.n(), 9);
        assert_eq!(g.sources().len(), 1);
        // Pivots form a chain through the first-column updates.
        assert!(critical_path_weight(&g) >= 3.0 * 1.0 + 2.0 * 2.0);
    }

    #[test]
    #[should_panic]
    fn fft_rejects_zero_levels() {
        let _ = fft(0);
    }
}
