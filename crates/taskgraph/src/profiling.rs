//! Thread-local call counters for the expensive analysis passes.
//!
//! [`crate::PreparedGraph`] promises that topological ordering, shape
//! classification, and series–parallel recognition run **once** per
//! prepared graph no matter how many solves reuse it. These counters
//! make that promise testable: a test snapshots the counts, runs the
//! engine, and asserts the deltas.
//!
//! The counters are thread-local so concurrently running tests (cargo
//! runs a test binary's cases on many threads) cannot pollute each
//! other's deltas, and the increments are plain `Cell` bumps —
//! negligible next to the passes they count.

use std::cell::Cell;

thread_local! {
    static TOPO_ORDER: Cell<u64> = const { Cell::new(0) };
    static CLASSIFY: Cell<u64> = const { Cell::new(0) };
    static SP_FROM_GRAPH: Cell<u64> = const { Cell::new(0) };
    static TRANSITIVE_REDUCTION: Cell<u64> = const { Cell::new(0) };
    static SP_SPLICE: Cell<u64> = const { Cell::new(0) };
    static SP_SPLICE_MISS: Cell<u64> = const { Cell::new(0) };
    static CONE_NODES: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's analysis-pass call counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Calls to [`crate::analysis::topo_order`].
    pub topo_order: u64,
    /// Calls to [`crate::structure::classify`] (and its
    /// tree-returning variant).
    pub classify: u64,
    /// Calls to [`crate::SpTree::from_graph`].
    pub sp_from_graph: u64,
    /// Calls to [`crate::analysis::transitive_reduction`] (and its
    /// ordered variant). The edit layer's selective invalidation
    /// promises weight-only edits never re-run the reduction; this
    /// counter makes that assertable.
    pub transitive_reduction: u64,
    /// Successful [`crate::SpTree::splice`] calls: a structural edit
    /// repaired the SP decomposition by rebuilding only the subtree
    /// spanning the touched edge, with no full recognition pass.
    pub sp_splice: u64,
    /// Failed [`crate::SpTree::splice`] calls: the local rebuild or
    /// its composition re-verification failed, and the caller must
    /// fall back to full recognition (accounted under
    /// [`Counts::sp_from_graph`] when it runs).
    pub sp_splice_miss: u64,
    /// Total nodes visited by every cone-bounded repair pass
    /// (localized topological-order shifts, bounded completion-time
    /// relaxation, reachability/reduction row repair, splice region
    /// rebuilds). Bounding this is how tests prove a repair stayed
    /// local instead of silently degrading to a full pass.
    pub cone_nodes: u64,
}

impl std::ops::Sub for Counts {
    type Output = Counts;
    fn sub(self, rhs: Counts) -> Counts {
        Counts {
            topo_order: self.topo_order - rhs.topo_order,
            classify: self.classify - rhs.classify,
            sp_from_graph: self.sp_from_graph - rhs.sp_from_graph,
            transitive_reduction: self.transitive_reduction - rhs.transitive_reduction,
            sp_splice: self.sp_splice - rhs.sp_splice,
            sp_splice_miss: self.sp_splice_miss - rhs.sp_splice_miss,
            cone_nodes: self.cone_nodes - rhs.cone_nodes,
        }
    }
}

/// This thread's current counts.
pub fn counts() -> Counts {
    Counts {
        topo_order: TOPO_ORDER.with(Cell::get),
        classify: CLASSIFY.with(Cell::get),
        sp_from_graph: SP_FROM_GRAPH.with(Cell::get),
        transitive_reduction: TRANSITIVE_REDUCTION.with(Cell::get),
        sp_splice: SP_SPLICE.with(Cell::get),
        sp_splice_miss: SP_SPLICE_MISS.with(Cell::get),
        cone_nodes: CONE_NODES.with(Cell::get),
    }
}

pub(crate) fn bump_topo_order() {
    TOPO_ORDER.with(|c| c.set(c.get() + 1));
}

pub(crate) fn bump_classify() {
    CLASSIFY.with(|c| c.set(c.get() + 1));
}

pub(crate) fn bump_sp_from_graph() {
    SP_FROM_GRAPH.with(|c| c.set(c.get() + 1));
}

pub(crate) fn bump_transitive_reduction() {
    TRANSITIVE_REDUCTION.with(|c| c.set(c.get() + 1));
}

pub(crate) fn bump_sp_splice() {
    SP_SPLICE.with(|c| c.set(c.get() + 1));
}

pub(crate) fn bump_sp_splice_miss() {
    SP_SPLICE_MISS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn add_cone_nodes(n: u64) {
    CONE_NODES.with(|c| c.set(c.get() + n));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analysis, generators, structure, SpTree};

    #[test]
    fn counters_track_analysis_passes() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let before = counts();
        analysis::topo_order(&g);
        structure::classify(&g); // diamond: reaches the SP check
        SpTree::from_graph(&g);
        let delta = counts() - before;
        // One explicit topo call, plus one inside each of the two SP
        // recognitions (classify's internal one and the explicit one).
        assert_eq!(delta.topo_order, 3);
        assert_eq!(delta.classify, 1);
        // classify itself recognizes SP via from_graph, plus our
        // explicit call.
        assert_eq!(delta.sp_from_graph, 2);
    }
}
