//! Structure detection: which specialized solver applies to a graph.
//!
//! The paper gives closed forms / polynomial algorithms for specific
//! graph shapes (Theorem 1: forks; Theorem 2: trees and series–parallel
//! graphs). [`classify`] detects the most specific shape so the core
//! crate can dispatch to the cheapest exact solver.

use crate::graph::{TaskGraph, TaskId};
use crate::sp::SpTree;

/// Most specific recognized shape of an execution graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A single task.
    Single,
    /// A simple path `T_0 → T_1 → … → T_{n−1}`.
    Chain,
    /// One source with `n` independent children (Theorem 1).
    Fork,
    /// `n` independent parents feeding one sink (mirror of a fork).
    Join,
    /// Out-tree: a rooted tree with edges pointing away from the root.
    OutTree,
    /// In-tree: a rooted tree with edges pointing towards the root.
    InTree,
    /// Series–parallel composition (recognized by [`SpTree::from_graph`]).
    SeriesParallel,
    /// None of the above: requires the general numerical solver.
    General,
}

/// Whether the graph is a simple chain.
pub fn is_chain(g: &TaskGraph) -> bool {
    if g.n() == 1 {
        return true;
    }
    if g.m() != g.n() - 1 {
        return false;
    }
    let one_source = g.sources().len() == 1;
    let one_sink = g.sinks().len() == 1;
    one_source
        && one_sink
        && g.tasks()
            .all(|t| g.succs(t).len() <= 1 && g.preds(t).len() <= 1)
}

/// Whether the graph is a fork: one source, all other tasks are its
/// children and have no successors. Requires at least 2 leaves (a
/// 1-leaf fork is just a chain).
pub fn is_fork(g: &TaskGraph) -> bool {
    let sources = g.sources();
    if sources.len() != 1 || g.n() < 3 {
        return false;
    }
    let root = sources[0];
    g.succs(root).len() == g.n() - 1
        && g.tasks()
            .filter(|&t| t != root)
            .all(|t| g.succs(t).is_empty() && g.preds(t) == [root])
}

/// Whether the graph is a join (reverse of a fork).
pub fn is_join(g: &TaskGraph) -> bool {
    is_fork(&g.reversed())
}

/// Whether the graph is an out-tree: a single source and every other
/// task has exactly one predecessor (connectivity follows because the
/// graph then has `n − 1` edges reaching every non-root).
pub fn is_out_tree(g: &TaskGraph) -> bool {
    let sources = g.sources();
    sources.len() == 1
        && g.tasks()
            .filter(|&t| t != sources[0])
            .all(|t| g.preds(t).len() == 1)
}

/// Whether the graph is an in-tree (every non-sink task has exactly one
/// successor, single sink).
pub fn is_in_tree(g: &TaskGraph) -> bool {
    is_out_tree(&g.reversed())
}

/// Children of `root` in an out-tree (just its successors).
pub fn tree_children(g: &TaskGraph, t: TaskId) -> &[TaskId] {
    g.succs(t)
}

/// Classify the graph into the most specific [`Shape`].
///
/// The order matters: every chain is an out-tree and an in-tree and an
/// SP graph; every fork is an out-tree; trees are checked before the
/// (more expensive) SP recognition.
pub fn classify(g: &TaskGraph) -> Shape {
    classify_with_tree(g).0
}

/// [`classify`], also returning the series–parallel decomposition when
/// the graph classified as [`Shape::SeriesParallel`] — so callers that
/// cache the classification (e.g. [`crate::PreparedGraph`]) get the
/// tree the recognition already built instead of recomputing it.
pub fn classify_with_tree(g: &TaskGraph) -> (Shape, Option<SpTree>) {
    classify_inner(g, None)
}

/// [`classify_with_tree`] with a caller-supplied topological order,
/// so the SP recognition reuses it instead of re-deriving one.
pub fn classify_with_tree_ordered(g: &TaskGraph, order: &[TaskId]) -> (Shape, Option<SpTree>) {
    classify_inner(g, Some(order))
}

fn classify_inner(g: &TaskGraph, order: Option<&[TaskId]>) -> (Shape, Option<SpTree>) {
    crate::profiling::bump_classify();
    if let Some(s) = specific_shape(g) {
        return (s, None);
    }
    let tree = match order {
        Some(o) => SpTree::from_graph_ordered(g, o),
        None => SpTree::from_graph(g),
    };
    if let Some(tree) = tree {
        return (Shape::SeriesParallel, Some(tree));
    }
    (Shape::General, None)
}

/// The cheap (pre-SP) portion of [`classify`]: the most specific
/// shape among single/chain/fork/join/tree, or `None` when only the
/// expensive series–parallel recognition could decide further.
/// `O(n + m)`, counter-free — the edit layer's local repair uses it
/// to keep a carried classification bit-identical to a fresh one.
pub fn specific_shape(g: &TaskGraph) -> Option<Shape> {
    if g.n() == 1 {
        return Some(Shape::Single);
    }
    if is_chain(g) {
        return Some(Shape::Chain);
    }
    if is_fork(g) {
        return Some(Shape::Fork);
    }
    if is_join(g) {
        return Some(Shape::Join);
    }
    if is_out_tree(g) {
        return Some(Shape::OutTree);
    }
    if is_in_tree(g) {
        return Some(Shape::InTree);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::TaskGraph;

    #[test]
    fn classifies_single_and_chain() {
        assert_eq!(classify(&TaskGraph::single(1.0)), Shape::Single);
        let g = generators::chain(&[1.0, 2.0, 3.0]);
        assert_eq!(classify(&g), Shape::Chain);
        assert!(is_out_tree(&g) && is_in_tree(&g));
    }

    #[test]
    fn classifies_fork_and_join() {
        let f = generators::fork(2.0, &[1.0, 3.0, 4.0]);
        assert_eq!(classify(&f), Shape::Fork);
        assert_eq!(classify(&f.reversed()), Shape::Join);
        assert!(is_out_tree(&f));
        assert!(!is_in_tree(&f));
    }

    #[test]
    fn classifies_trees() {
        // 0 -> 1 -> {2,3}, 0 -> 4  : out-tree, not a fork.
        let g = TaskGraph::new(vec![1.0; 5], &[(0, 1), (1, 2), (1, 3), (0, 4)]).unwrap();
        assert_eq!(classify(&g), Shape::OutTree);
        assert_eq!(classify(&g.reversed()), Shape::InTree);
    }

    #[test]
    fn classifies_sp_and_general() {
        // Diamond = series(0, parallel(1, 2), 3): SP but not a tree.
        let d = TaskGraph::new(vec![1.0; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(classify(&d), Shape::SeriesParallel);
        // The "N" graph is the canonical non-SP DAG:
        // 0 -> 2, 0 -> 3, 1 -> 3 (and nothing else).
        let n = TaskGraph::new(vec![1.0; 4], &[(0, 2), (0, 3), (1, 3)]).unwrap();
        assert_eq!(classify(&n), Shape::General);
    }

    #[test]
    fn two_task_chain_is_chain_not_fork() {
        let g = generators::chain(&[1.0, 2.0]);
        assert_eq!(classify(&g), Shape::Chain);
        assert!(!is_fork(&g));
    }

    #[test]
    fn disconnected_tasks_are_sp_parallel() {
        let g = TaskGraph::new(vec![1.0, 2.0], &[]).unwrap();
        assert_eq!(classify(&g), Shape::SeriesParallel);
    }
}
