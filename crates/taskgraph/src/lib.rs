//! # taskgraph — execution-graph substrate
//!
//! Directed-acyclic task graphs with per-task costs, as used by the
//! SPAA'11 paper *Reclaiming the Energy of a Schedule*. A [`TaskGraph`]
//! is the **execution graph** `Ĝ = (V, Ê)`: the application precedence
//! edges plus the serialization edges induced by a fixed mapping (see
//! the `mapping` crate for the augmentation step).
//!
//! The crate provides:
//!
//! * the graph data structure itself ([`TaskGraph`], [`TaskId`]),
//!   with cycle detection at construction time;
//! * graph analysis: topological orders, longest (critical) paths,
//!   per-task earliest/latest completion windows ([`analysis`]);
//! * structure detection: chains, forks, joins, in/out-trees, and
//!   series–parallel decomposition ([`structure`], [`sp`]);
//! * cached analysis for repeated solves on one graph
//!   ([`PreparedGraph`]), with once-only guarantees observable via
//!   [`profiling`];
//! * incremental edits ([`edit`], [`GraphEdit`]) applied through
//!   [`PreparedInstance::apply`] with **selective cache invalidation**:
//!   a weight change keeps the topological order, shape class, SP
//!   tree, and transitive reduction; edge edits keep whatever
//!   provably survives;
//! * random and deterministic generators for every graph family used
//!   by the paper's experiments ([`generators`]);
//! * DOT export for visual inspection ([`dot`]).

pub mod analysis;
pub mod dot;
pub mod edit;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod prepared;
pub mod profiling;
pub mod sp;
pub mod structure;
pub mod workflows;

pub use edit::{EditError, GraphEdit};
pub use graph::{GraphError, TaskGraph, TaskId};
pub use prepared::{AnalysisSnapshot, PreparedGraph, PreparedInstance};
pub use sp::SpTree;
pub use structure::Shape;
