//! Graph analysis: topological order, critical paths, time windows.

use crate::graph::{TaskGraph, TaskId};

/// A topological order of the tasks (Kahn's algorithm, deterministic:
/// ties broken by smallest id first).
///
/// The graph is guaranteed acyclic by construction, so this never
/// fails.
///
/// Callers that solve the same graph repeatedly should compute the
/// order once (e.g. via [`crate::PreparedGraph`]) and use the
/// `*_ordered` variants below.
pub fn topo_order(g: &TaskGraph) -> Vec<TaskId> {
    crate::profiling::bump_topo_order();
    topo_order_quiet(g)
}

/// [`topo_order`] without the [`crate::profiling`] bump — for callers
/// that need an order as an *implementation detail* of something else
/// (e.g. the edit layer's order-validity check) and must not muddy the
/// once-only accounting the counters exist to prove.
pub fn topo_order_quiet(g: &TaskGraph) -> Vec<TaskId> {
    let n = g.n();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.preds(TaskId(i)).len()).collect();
    // Min-heap on id for determinism.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(u)) = heap.pop() {
        order.push(TaskId(u));
        for &TaskId(v) in g.succs(TaskId(u)) {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                heap.push(std::cmp::Reverse(v));
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Longest weighted path ending at each task, **including** the task's
/// own duration: `ecl_i = d_i + max_{j ∈ preds(i)} ecl_j`.
///
/// With `durations = weights` this is the critical-path completion time
/// at unit speed; the energy solvers call it with actual durations
/// `d_i = w_i / s_i` to get earliest completion times.
pub fn earliest_completion(g: &TaskGraph, durations: &[f64]) -> Vec<f64> {
    earliest_completion_ordered(g, durations, &topo_order(g))
}

/// [`earliest_completion`] with a caller-supplied topological order
/// (must be a valid order of `g`, e.g. from a cached analysis).
pub fn earliest_completion_ordered(g: &TaskGraph, durations: &[f64], order: &[TaskId]) -> Vec<f64> {
    assert_eq!(durations.len(), g.n());
    debug_assert!(is_topo_order(g, order));
    let mut ecl = vec![0.0; g.n()];
    for &t in order {
        let start = g.preds(t).iter().map(|&p| ecl[p.0]).fold(0.0f64, f64::max);
        ecl[t.0] = start + durations[t.0];
    }
    ecl
}

/// Latest completion time of each task so that every task still meets
/// the deadline `d`: `lcl_i = min(d, min_{j ∈ succs(i)} lcl_j − dur_j)`.
pub fn latest_completion(g: &TaskGraph, durations: &[f64], deadline: f64) -> Vec<f64> {
    latest_completion_ordered(g, durations, deadline, &topo_order(g))
}

/// [`latest_completion`] with a caller-supplied topological order.
pub fn latest_completion_ordered(
    g: &TaskGraph,
    durations: &[f64],
    deadline: f64,
    order: &[TaskId],
) -> Vec<f64> {
    assert_eq!(durations.len(), g.n());
    debug_assert!(is_topo_order(g, order));
    let mut lcl = vec![deadline; g.n()];
    for &t in order.iter().rev() {
        let lim = g
            .succs(t)
            .iter()
            .map(|&s| lcl[s.0] - durations[s.0])
            .fold(deadline, f64::min);
        lcl[t.0] = lim;
    }
    lcl
}

/// Makespan of the graph under the given durations (max earliest
/// completion over all tasks).
pub fn makespan(g: &TaskGraph, durations: &[f64]) -> f64 {
    earliest_completion(g, durations)
        .into_iter()
        .fold(0.0f64, f64::max)
}

/// [`makespan`] with a caller-supplied topological order.
pub fn makespan_ordered(g: &TaskGraph, durations: &[f64], order: &[TaskId]) -> f64 {
    earliest_completion_ordered(g, durations, order)
        .into_iter()
        .fold(0.0f64, f64::max)
}

/// Weight of the heaviest (critical) path: the makespan at unit speed.
///
/// This is the minimum deadline for which `MinEnergy(Ĝ, D)` is feasible
/// with unbounded speeds scaled to 1, i.e. `D_min = cp_weight / s_max`
/// when a maximum speed `s_max` exists.
pub fn critical_path_weight(g: &TaskGraph) -> f64 {
    makespan(g, g.weights())
}

/// One heaviest path, as a list of task ids from a source to a sink.
pub fn critical_path(g: &TaskGraph) -> Vec<TaskId> {
    let ecl = earliest_completion(g, g.weights());
    // Start from the task with the largest completion time and walk
    // backwards through the predecessor that realizes the start time.
    let mut cur = g
        .tasks()
        .max_by(|&a, &b| ecl[a.0].partial_cmp(&ecl[b.0]).unwrap())
        .expect("non-empty graph");
    let mut path = vec![cur];
    loop {
        let start = ecl[cur.0] - g.weight(cur);
        let prev = g
            .preds(cur)
            .iter()
            .copied()
            .find(|&p| (ecl[p.0] - start).abs() <= 1e-9 * (1.0 + start.abs()));
        match prev {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Per-task slack under the given durations and deadline:
/// `lcl_i − ecl_i`. Non-negative everywhere iff the schedule is
/// feasible. Critical tasks have (near-)zero slack.
pub fn slack(g: &TaskGraph, durations: &[f64], deadline: f64) -> Vec<f64> {
    let ecl = earliest_completion(g, durations);
    let lcl = latest_completion(g, durations, deadline);
    ecl.iter().zip(&lcl).map(|(e, l)| l - e).collect()
}

/// Whether `order` is a topological order of `g` (each task appears
/// once, after all its predecessors).
pub fn is_topo_order(g: &TaskGraph, order: &[TaskId]) -> bool {
    if order.len() != g.n() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.n()];
    for (k, &t) in order.iter().enumerate() {
        if pos[t.0] != usize::MAX {
            return false;
        }
        pos[t.0] = k;
    }
    g.edges().iter().all(|&(u, v)| pos[u.0] < pos[v.0])
}

/// Reachability matrix as a vector of bitsets: `reach[u][v]` is true
/// iff there is a directed path from `u` to `v` (including `u = v`).
///
/// O(n·m / 64) via bit-parallel DP over reverse topological order.
pub fn reachability(g: &TaskGraph) -> Vec<Vec<u64>> {
    reachability_ordered(g, &topo_order(g))
}

/// [`reachability`] with a caller-supplied topological order.
pub fn reachability_ordered(g: &TaskGraph, order: &[TaskId]) -> Vec<Vec<u64>> {
    debug_assert!(is_topo_order(g, order));
    let n = g.n();
    let wds = n.div_ceil(64);
    let mut reach = vec![vec![0u64; wds]; n];
    for &t in order.iter().rev() {
        let u = t.0;
        reach[u][u / 64] |= 1 << (u % 64);
        for s in 0..g.succs(t).len() {
            let v = g.succs(t)[s].0;
            // reach[u] |= reach[v]  (split borrows via index math)
            let (a, b) = if u < v {
                let (lo, hi) = reach.split_at_mut(v);
                (&mut lo[u], &hi[0])
            } else {
                let (lo, hi) = reach.split_at_mut(u);
                (&mut hi[0], &lo[v])
            };
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x |= *y;
            }
        }
    }
    reach
}

/// Query helper for [`reachability`] output.
#[inline]
pub fn reaches(reach: &[Vec<u64>], u: TaskId, v: TaskId) -> bool {
    reach[u.0][v.0 / 64] >> (v.0 % 64) & 1 == 1
}

/// Transitive reduction: the same DAG with every redundant edge
/// removed (an edge `(u, v)` is redundant when some other successor of
/// `u` already reaches `v`).
///
/// The reduction preserves the precedence *relation*, hence the
/// feasible schedules and the optimal energy — but shrinks the
/// constraint sets handed to the LP/barrier substrates. `O(m·deg)`
/// after the bit-parallel reachability.
pub fn transitive_reduction(g: &TaskGraph) -> TaskGraph {
    transitive_reduction_ordered(g, &topo_order(g))
}

/// [`transitive_reduction`] with a caller-supplied topological order.
pub fn transitive_reduction_ordered(g: &TaskGraph, order: &[TaskId]) -> TaskGraph {
    transitive_reduction_with_reach(g, &reachability_ordered(g, order))
}

/// [`transitive_reduction`] over a precomputed reachability matrix of
/// `g` (from [`reachability`]); counts as a full reduction pass in
/// [`crate::profiling`].
pub fn transitive_reduction_with_reach(g: &TaskGraph, reach: &[Vec<u64>]) -> TaskGraph {
    crate::profiling::bump_transitive_reduction();
    let mut kept: Vec<(usize, usize)> = Vec::with_capacity(g.m());
    for &(u, v) in g.edges() {
        let redundant = g.succs(u).iter().any(|&w| w != v && reaches(reach, w, v));
        if !redundant {
            kept.push((u.0, v.0));
        }
    }
    TaskGraph::new(g.weights().to_vec(), &kept).expect("removing edges from a DAG keeps it a DAG")
}

/// Repair a topological order after edge insertions by a localized
/// shift of the affected window (Pearce–Kelly style), instead of
/// recomputing the order from scratch.
///
/// `old` must be a permutation of the tasks of `g` that is a valid
/// topological order of `g` *minus* the `inserted` edges; `inserted`
/// lists the edges new to `g`. For each inserted edge `(u, v)` whose
/// endpoints the retained order puts backwards, only the nodes between
/// `v` and `u` that are reachable from `v` or reach `u` are re-slotted
/// — everything outside that cone keeps its position. Touched nodes
/// are accounted in [`crate::profiling::Counts::cone_nodes`].
pub fn repair_topo_order(
    g: &TaskGraph,
    old: &[TaskId],
    inserted: &[(usize, usize)],
) -> Vec<TaskId> {
    let n = g.n();
    assert_eq!(old.len(), n);
    let mut order = old.to_vec();
    let mut pos = vec![0usize; n];
    for (k, &t) in order.iter().enumerate() {
        pos[t.0] = k;
    }
    let mut cone = 0u64;
    for &(u, v) in inserted {
        if pos[u] < pos[v] {
            continue; // already consistent
        }
        let (lo, hi) = (pos[v], pos[u]);
        // F: v and its descendants inside the window — they must move
        // after u. B: u and its ancestors inside the window — they must
        // move before v. In a DAG the two sets are disjoint (a common
        // member would close a cycle through the new edge).
        let mut fwd = Vec::new();
        let mut in_f = std::collections::HashSet::new();
        in_f.insert(v);
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            fwd.push(x);
            for &TaskId(w) in g.succs(TaskId(x)) {
                if pos[w] <= hi && in_f.insert(w) {
                    stack.push(w);
                }
            }
        }
        let mut bwd = Vec::new();
        let mut in_b = std::collections::HashSet::new();
        in_b.insert(u);
        stack.push(u);
        while let Some(x) = stack.pop() {
            bwd.push(x);
            for &TaskId(w) in g.preds(TaskId(x)) {
                if pos[w] >= lo && in_b.insert(w) {
                    stack.push(w);
                }
            }
        }
        debug_assert!(
            fwd.iter().all(|x| !in_b.contains(x)),
            "cycle through ({u}, {v})"
        );
        // Pool the window positions of F ∪ B and refill them in place:
        // B first, then F, each keeping its internal relative order.
        bwd.sort_unstable_by_key(|&x| pos[x]);
        fwd.sort_unstable_by_key(|&x| pos[x]);
        let mut slots: Vec<usize> = bwd.iter().chain(&fwd).map(|&x| pos[x]).collect();
        slots.sort_unstable();
        for (&slot, &node) in slots.iter().zip(bwd.iter().chain(&fwd)) {
            order[slot] = TaskId(node);
            pos[node] = slot;
        }
        cone += slots.len() as u64;
    }
    crate::profiling::add_cone_nodes(cone);
    debug_assert!(is_topo_order(g, &order));
    order
}

/// Repair cached earliest-completion times after an edit by a
/// cost-bounded forward relaxation limited to the edit's cone.
///
/// `old` holds the pre-edit values; `seeds` names every task whose
/// inputs may have changed (its duration, or its predecessor set —
/// i.e. the targets of inserted/removed edges). Tasks are re-evaluated
/// in topological position order starting from the seeds, and a task's
/// successors are visited only when its value actually moved — where
/// the old values are provably unchanged, propagation stops. Visited
/// tasks are accounted in [`crate::profiling::Counts::cone_nodes`].
pub fn repair_earliest_completion(
    g: &TaskGraph,
    durations: &[f64],
    order: &[TaskId],
    old: &[f64],
    seeds: &[usize],
) -> Vec<f64> {
    assert_eq!(durations.len(), g.n());
    assert_eq!(old.len(), g.n());
    debug_assert!(is_topo_order(g, order));
    let mut pos = vec![0usize; g.n()];
    for (k, &t) in order.iter().enumerate() {
        pos[t.0] = k;
    }
    let mut ecl = old.to_vec();
    let mut queued: std::collections::HashSet<usize> = seeds.iter().copied().collect();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = queued
        .iter()
        .map(|&s| std::cmp::Reverse((pos[s], s)))
        .collect();
    let mut visited = 0u64;
    while let Some(std::cmp::Reverse((_, t))) = heap.pop() {
        visited += 1;
        let start = g
            .preds(TaskId(t))
            .iter()
            .map(|&p| ecl[p.0])
            .fold(0.0f64, f64::max);
        let val = start + durations[t];
        if val != ecl[t] {
            ecl[t] = val;
            for &TaskId(s) in g.succs(TaskId(t)) {
                if queued.insert(s) {
                    heap.push(std::cmp::Reverse((pos[s], s)));
                }
            }
        }
    }
    crate::profiling::add_cone_nodes(visited);
    debug_assert_eq!(ecl, earliest_completion_ordered(g, durations, order));
    ecl
}

/// Backward analogue of [`repair_earliest_completion`]: repair cached
/// latest-completion times by a cone-bounded relaxation from the seeds
/// (tasks whose duration or successor set may have changed), walking
/// predecessors only while values actually move.
pub fn repair_latest_completion(
    g: &TaskGraph,
    durations: &[f64],
    deadline: f64,
    order: &[TaskId],
    old: &[f64],
    seeds: &[usize],
) -> Vec<f64> {
    assert_eq!(durations.len(), g.n());
    assert_eq!(old.len(), g.n());
    debug_assert!(is_topo_order(g, order));
    let mut pos = vec![0usize; g.n()];
    for (k, &t) in order.iter().enumerate() {
        pos[t.0] = k;
    }
    let mut lcl = old.to_vec();
    let mut queued: std::collections::HashSet<usize> = seeds.iter().copied().collect();
    // Max-heap on position: process in reverse topological order.
    let mut heap: std::collections::BinaryHeap<(usize, usize)> =
        queued.iter().map(|&s| (pos[s], s)).collect();
    let mut visited = 0u64;
    while let Some((_, t)) = heap.pop() {
        visited += 1;
        let lim = g
            .succs(TaskId(t))
            .iter()
            .map(|&s| lcl[s.0] - durations[s.0])
            .fold(deadline, f64::min);
        if lim != lcl[t] {
            lcl[t] = lim;
            for &TaskId(p) in g.preds(TaskId(t)) {
                if queued.insert(p) {
                    heap.push((pos[p], p));
                }
            }
        }
    }
    crate::profiling::add_cone_nodes(visited);
    debug_assert_eq!(
        lcl,
        latest_completion_ordered(g, durations, deadline, order)
    );
    lcl
}

/// Repair a cached reachability matrix and transitive reduction after
/// edge edits, touching only the affected cone — no full reduction
/// pass (and no [`crate::profiling::Counts::transitive_reduction`]
/// bump).
///
/// `g` is the edited graph with `order` a valid topological order of
/// it; `old_reach` is the pre-edit reachability matrix and `old_kept`
/// the pre-edit reduction's edge set (same id space: the task set must
/// not have changed). `edited_sources` lists the source endpoint of
/// every inserted or removed edge — the only nodes whose successor
/// sets changed.
///
/// Reachability rows are recomputed bottom-up starting from those
/// sources and propagate to predecessors only while a row actually
/// changes; an edge's keep/drop verdict is re-evaluated only when its
/// source's successor set or some successor's row changed. Everything
/// else is carried verbatim from the old reduction. Returns the
/// repaired matrix and the reduced edge set (in `g.edges()` order,
/// exactly as a full pass would emit it).
pub fn repair_reduction(
    g: &TaskGraph,
    order: &[TaskId],
    old_reach: &[Vec<u64>],
    old_kept: &std::collections::HashSet<(usize, usize)>,
    edited_sources: &[usize],
) -> (Vec<Vec<u64>>, Vec<(usize, usize)>) {
    let n = g.n();
    assert_eq!(old_reach.len(), n);
    debug_assert!(is_topo_order(g, order));
    let wds = n.div_ceil(64);
    let mut reach = old_reach.to_vec();
    let mut dirty = vec![false; n]; // successor set changed: must recompute
    for &u in edited_sources {
        dirty[u] = true;
    }
    let mut changed = vec![false; n]; // row differs from the old matrix
    let mut visited = 0u64;
    for &t in order.iter().rev() {
        let u = t.0;
        if !dirty[u] && !g.succs(t).iter().any(|&s| changed[s.0]) {
            continue;
        }
        visited += 1;
        let mut row = vec![0u64; wds];
        row[u / 64] |= 1 << (u % 64);
        for &s in g.succs(t) {
            for (x, y) in row.iter_mut().zip(&reach[s.0]) {
                *x |= *y;
            }
        }
        if row != reach[u] {
            changed[u] = true;
            reach[u] = row;
        }
    }
    // Re-evaluate keep/drop only where a verdict input changed.
    let mut recheck = vec![false; n];
    for &u in edited_sources {
        recheck[u] = true;
    }
    for t in g.tasks() {
        if g.succs(t).iter().any(|&s| changed[s.0]) {
            recheck[t.0] = true;
        }
    }
    let mut kept: Vec<(usize, usize)> = Vec::with_capacity(g.m());
    for &(u, v) in g.edges() {
        let keep = if recheck[u.0] {
            !g.succs(u).iter().any(|&w| w != v && reaches(&reach, w, v))
        } else {
            old_kept.contains(&(u.0, v.0))
        };
        if keep {
            kept.push((u.0, v.0));
        }
    }
    crate::profiling::add_cone_nodes(visited);
    debug_assert_eq!(reach, reachability_ordered(g, order));
    (reach, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn diamond() -> TaskGraph {
        TaskGraph::new(vec![1.0, 2.0, 3.0, 4.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let g = diamond();
        let o = topo_order(&g);
        assert!(is_topo_order(&g, &o));
        assert_eq!(o, topo_order(&g));
        assert_eq!(o[0], TaskId(0));
        assert_eq!(o[3], TaskId(3));
    }

    #[test]
    fn earliest_completion_diamond() {
        let g = diamond();
        let ecl = earliest_completion(&g, g.weights());
        assert_eq!(ecl, vec![1.0, 3.0, 4.0, 8.0]);
        assert_eq!(makespan(&g, g.weights()), 8.0);
        assert_eq!(critical_path_weight(&g), 8.0);
    }

    #[test]
    fn latest_completion_and_slack() {
        let g = diamond();
        let lcl = latest_completion(&g, g.weights(), 10.0);
        // Sink must finish by 10, so T1 by 6, T2 by 6, T0 by min(4,3).
        assert_eq!(lcl, vec![3.0, 6.0, 6.0, 10.0]);
        let s = slack(&g, g.weights(), 10.0);
        assert_eq!(s, vec![2.0, 3.0, 2.0, 2.0]);
        // At the exact critical-path deadline, the critical path has 0 slack.
        let s8 = slack(&g, g.weights(), 8.0);
        assert!(s8[0].abs() < 1e-12 && s8[2].abs() < 1e-12 && s8[3].abs() < 1e-12);
        assert!((s8[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_follows_heaviest_route() {
        let g = diamond();
        assert_eq!(critical_path(&g), vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn reachability_matrix() {
        let g = diamond();
        let r = reachability(&g);
        assert!(reaches(&r, TaskId(0), TaskId(3)));
        assert!(reaches(&r, TaskId(0), TaskId(0)));
        assert!(!reaches(&r, TaskId(1), TaskId(2)));
        assert!(!reaches(&r, TaskId(3), TaskId(0)));
    }

    #[test]
    fn is_topo_order_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topo_order(
            &g,
            &[TaskId(1), TaskId(0), TaskId(2), TaskId(3)]
        ));
        assert!(!is_topo_order(&g, &[TaskId(0), TaskId(1), TaskId(2)]));
        assert!(!is_topo_order(
            &g,
            &[TaskId(0), TaskId(0), TaskId(2), TaskId(3)]
        ));
    }

    #[test]
    fn transitive_reduction_drops_redundant_edges() {
        // Diamond plus the redundant shortcut (0, 3).
        let g = TaskGraph::new(vec![1.0; 4], &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.m(), 4);
        assert!(!r.has_edge(TaskId(0), TaskId(3)));
        // Reachability is preserved.
        let ra = reachability(&g);
        let rb = reachability(&r);
        for u in g.tasks() {
            for v in g.tasks() {
                assert_eq!(reaches(&ra, u, v), reaches(&rb, u, v), "{u} -> {v}");
            }
        }
        // Critical path unchanged.
        assert_eq!(critical_path_weight(&g), critical_path_weight(&r));
    }

    #[test]
    fn transitive_reduction_of_chain_is_identity() {
        let g = TaskGraph::new(vec![1.0; 3], &[(0, 1), (1, 2)]).unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.m(), 2);
        assert_eq!(r.edges(), g.edges());
    }

    #[test]
    fn chain_completion_times_accumulate() {
        let g = TaskGraph::new(vec![2.0, 3.0, 4.0], &[(0, 1), (1, 2)]).unwrap();
        let ecl = earliest_completion(&g, &[1.0, 1.5, 2.0]);
        assert_eq!(ecl, vec![1.0, 2.5, 4.5]);
    }
}
