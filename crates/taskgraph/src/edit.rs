//! Incremental graph edits.
//!
//! The paper's whole setting is *re-solving* `MinEnergy(Ĝ, D)` as the
//! instance evolves: a task's cost estimate is refined, a precedence
//! constraint appears or goes away, a task is added to or dropped from
//! the workflow. Rebuilding a [`TaskGraph`] from scratch for every such
//! change is easy; what is expensive is re-deriving the *analysis*
//! (topological order, shape classification, SP decomposition,
//! transitive reduction) that [`crate::PreparedInstance`] has already
//! paid for.
//!
//! This module defines the edit vocabulary — [`GraphEdit`] — and the
//! pure application function [`apply_edits`], which produces the edited
//! graph **plus** an [`EditEffect`] describing exactly which cached
//! analyses the edit batch can have dirtied. The selective cache
//! carryover itself lives in [`crate::PreparedInstance::apply`]:
//!
//! * weight-only batches preserve *every* structural cache (topological
//!   order, shape class, SP tree, transitive reduction) — only the
//!   completion times must be re-evaluated, by a cone-bounded
//!   relaxation seeded at the re-weighted tasks;
//! * edge edits keep the topological order (repaired in place by a
//!   localized Pearce–Kelly shift when an insertion breaks it) and
//!   *repair* the SP tree, reduction, and completion times locally
//!   within the edit's cone, falling back to recomputation only when
//!   a repair provably cannot apply;
//! * task additions/removals renumber or extend the id space and drop
//!   everything.
//!
//! To make that possible, [`EditEffect`] carries a touched-region
//! summary (net edge changes, their endpoint set, re-weighted tasks)
//! plus the repaired order itself.
//!
//! Edits validate exactly like [`TaskGraph::new`]: bad endpoints,
//! self-loops, non-positive weights, and introduced cycles are
//! rejected with an [`EditError`], leaving the original graph
//! untouched (application is copy-on-write, never in-place).

use std::fmt;

use crate::analysis;
use crate::graph::{GraphError, TaskGraph, TaskId};

/// One incremental edit to a task graph.
///
/// Task ids are the dense `0..n` indices of the graph the edit is
/// applied to. Within a batch, edits apply **in order**, and each edit
/// sees the ids as left by the previous one (in particular,
/// [`GraphEdit::RemoveTask`] renumbers every id above the removed one,
/// and [`GraphEdit::AddTask`] appends id `n`).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphEdit {
    /// Replace the cost of `task` with `weight` (> 0, finite).
    SetWeight {
        /// The task whose cost changes.
        task: usize,
        /// The new cost.
        weight: f64,
    },
    /// Add the precedence edge `(from, to)`. Adding an existing edge
    /// is a no-op (duplicate edges collapse, as in [`TaskGraph::new`]).
    InsertEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// Remove the precedence edge `(from, to)`. The edge must exist.
    RemoveEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// Append a new task (id `n`) with the given cost and incident
    /// edges (`preds → new`, `new → succs`).
    AddTask {
        /// Cost of the new task.
        weight: f64,
        /// Predecessors of the new task.
        preds: Vec<usize>,
        /// Successors of the new task.
        succs: Vec<usize>,
    },
    /// Remove `task` and every incident edge; tasks above it shift
    /// down by one (ids stay dense).
    RemoveTask {
        /// The task to remove.
        task: usize,
    },
}

impl GraphEdit {
    /// Whether this edit touches only task costs, leaving the
    /// precedence structure (and hence every structural cache) intact.
    pub fn is_weight_only(&self) -> bool {
        matches!(self, GraphEdit::SetWeight { .. })
    }

    /// Whether this edit changes the task set (and hence the id
    /// space), invalidating anything indexed by `TaskId`.
    pub fn changes_task_set(&self) -> bool {
        matches!(
            self,
            GraphEdit::AddTask { .. } | GraphEdit::RemoveTask { .. }
        )
    }
}

impl fmt::Display for GraphEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphEdit::SetWeight { task, weight } => write!(f, "set w(T{task}) = {weight}"),
            GraphEdit::InsertEdge { from, to } => write!(f, "insert edge T{from} -> T{to}"),
            GraphEdit::RemoveEdge { from, to } => write!(f, "remove edge T{from} -> T{to}"),
            GraphEdit::AddTask {
                weight,
                preds,
                succs,
            } => {
                write!(
                    f,
                    "add task w = {weight} ({} preds, {} succs)",
                    preds.len(),
                    succs.len()
                )
            }
            GraphEdit::RemoveTask { task } => write!(f, "remove task T{task}"),
        }
    }
}

/// Why an edit batch could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum EditError {
    /// The edited edge/weight set is not a valid DAG instance
    /// (introduced cycle, bad weight, bad endpoint, self-loop).
    Graph(GraphError),
    /// [`GraphEdit::RemoveEdge`] named an edge that is not present.
    MissingEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// An edit referenced a task id `>= n` (as seen at that point of
    /// the batch).
    BadTask(usize),
    /// [`GraphEdit::RemoveTask`] would leave the graph empty.
    WouldBeEmpty,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::Graph(e) => write!(f, "edit produces an invalid graph: {e}"),
            EditError::MissingEdge { from, to } => {
                write!(f, "cannot remove absent edge T{from} -> T{to}")
            }
            EditError::BadTask(t) => write!(f, "edit references unknown task T{t}"),
            EditError::WouldBeEmpty => write!(f, "cannot remove the last task"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<GraphError> for EditError {
    fn from(e: GraphError) -> Self {
        EditError::Graph(e)
    }
}

/// What an applied edit batch can have dirtied — the contract
/// [`crate::PreparedInstance::apply`] uses to decide which caches
/// survive or get locally repaired. Beyond the three coarse flags it
/// carries a **touched-region summary**: the net edge changes, their
/// endpoint set (the edit's cone entry points), the re-weighted tasks,
/// and — when an insertion broke the retained topological order — a
/// repaired order produced by a localized Pearce–Kelly shift
/// ([`crate::analysis::repair_topo_order`]) instead of a recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditEffect {
    /// Every edit was [`GraphEdit::SetWeight`]: the precedence
    /// structure is untouched, so topological order, shape class, SP
    /// tree, and transitive reduction all remain valid.
    pub weight_only: bool,
    /// The old topological order is still a topological order of the
    /// edited graph (true for weight-only and pure-removal batches;
    /// checked explicitly when edges were inserted). Meaningless when
    /// the task set changed.
    pub topo_preserved: bool,
    /// The task set (and hence the id space) changed.
    pub task_set_changed: bool,
    /// Net new edges: present in the edited graph, absent from the
    /// original. Empty when the task set changed (the id spaces are
    /// not comparable) — local repair does not apply there.
    pub inserted_edges: Vec<(usize, usize)>,
    /// Net removed edges: present in the original, absent from the
    /// edited graph. Empty when the task set changed.
    pub removed_edges: Vec<(usize, usize)>,
    /// Deduplicated, sorted endpoint set of every net edge change —
    /// the entry points of the edit's cone, which bounds every local
    /// repair pass. Empty for weight-only batches.
    pub touched: Vec<usize>,
    /// Tasks whose cost actually changed (net, bitwise). Seeds the
    /// cone-bounded completion-time relaxation.
    pub reweighted: Vec<usize>,
    /// A valid topological order of the edited graph, present exactly
    /// when the retained order broke (an insertion pointed backwards)
    /// but the task set is unchanged: the affected window was shifted
    /// locally rather than recomputed. `None` whenever
    /// [`EditEffect::topo_preserved`] is true (the old order still
    /// works) or the task set changed (nothing to repair from).
    pub repaired_order: Option<Vec<TaskId>>,
}

/// Apply an edit batch to a graph, returning the edited graph and the
/// [`EditEffect`] describing what the batch can have invalidated. The
/// input graph is never modified; on error nothing is produced.
pub fn apply_edits(
    g: &TaskGraph,
    edits: &[GraphEdit],
) -> Result<(TaskGraph, EditEffect), EditError> {
    apply_edits_ordered(g, edits, None)
}

/// [`apply_edits`] with a caller-supplied topological order of `g`
/// (must be valid for `g`): the edge-insertion validity check then
/// reuses it instead of re-deriving one — what
/// [`crate::PreparedInstance::apply`] does with its cached order.
pub fn apply_edits_ordered(
    g: &TaskGraph,
    edits: &[GraphEdit],
    old_order: Option<&[TaskId]>,
) -> Result<(TaskGraph, EditEffect), EditError> {
    debug_assert!(
        old_order.is_none_or(|o| analysis::is_topo_order(g, o)),
        "old_order must be a topological order of the pre-edit graph"
    );
    let mut weights: Vec<f64> = g.weights().to_vec();
    let mut edges: Vec<(usize, usize)> = g.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
    let mut weight_only = true;
    let mut task_set_changed = false;
    let mut edges_inserted = false;

    for edit in edits {
        let n = weights.len();
        match edit {
            GraphEdit::SetWeight { task, weight } => {
                if *task >= n {
                    return Err(EditError::BadTask(*task));
                }
                if !(weight.is_finite() && *weight > 0.0) {
                    return Err(GraphError::BadWeight {
                        task: *task,
                        weight: *weight,
                    }
                    .into());
                }
                weights[*task] = *weight;
            }
            GraphEdit::InsertEdge { from, to } => {
                weight_only = false;
                if *from >= n {
                    return Err(EditError::BadTask(*from));
                }
                if *to >= n {
                    return Err(EditError::BadTask(*to));
                }
                if from == to {
                    return Err(GraphError::SelfLoop(*from).into());
                }
                if !edges.contains(&(*from, *to)) {
                    edges.push((*from, *to));
                    edges_inserted = true;
                }
            }
            GraphEdit::RemoveEdge { from, to } => {
                weight_only = false;
                let Some(pos) = edges.iter().position(|e| e == &(*from, *to)) else {
                    return Err(EditError::MissingEdge {
                        from: *from,
                        to: *to,
                    });
                };
                edges.remove(pos);
            }
            GraphEdit::AddTask {
                weight,
                preds,
                succs,
            } => {
                weight_only = false;
                task_set_changed = true;
                for &p in preds.iter().chain(succs) {
                    if p >= n {
                        return Err(EditError::BadTask(p));
                    }
                }
                weights.push(*weight);
                edges.extend(preds.iter().map(|&p| (p, n)));
                edges.extend(succs.iter().map(|&s| (n, s)));
            }
            GraphEdit::RemoveTask { task } => {
                weight_only = false;
                task_set_changed = true;
                if *task >= n {
                    return Err(EditError::BadTask(*task));
                }
                if n == 1 {
                    return Err(EditError::WouldBeEmpty);
                }
                weights.remove(*task);
                let shift = |i: usize| if i > *task { i - 1 } else { i };
                edges.retain(|&(u, v)| u != *task && v != *task);
                for e in &mut edges {
                    *e = (shift(e.0), shift(e.1));
                }
            }
        }
    }

    let edited = TaskGraph::new(weights, &edges)?;

    // Touched-region summary: net edge/weight changes between the two
    // graphs. Only meaningful while the id space is stable.
    let (inserted_edges, removed_edges, touched, reweighted) = if task_set_changed {
        (Vec::new(), Vec::new(), Vec::new(), Vec::new())
    } else {
        let old_set: std::collections::HashSet<(usize, usize)> =
            g.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
        let new_set: std::collections::HashSet<(usize, usize)> =
            edited.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
        let ins: Vec<(usize, usize)> = edited
            .edges()
            .iter()
            .map(|&(u, v)| (u.0, v.0))
            .filter(|e| !old_set.contains(e))
            .collect();
        let rem: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .map(|&(u, v)| (u.0, v.0))
            .filter(|e| !new_set.contains(e))
            .collect();
        let mut tch: Vec<usize> = ins.iter().chain(&rem).flat_map(|&(u, v)| [u, v]).collect();
        tch.sort_unstable();
        tch.dedup();
        let rew: Vec<usize> = g
            .weights()
            .iter()
            .zip(edited.weights())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        (ins, rem, tch, rew)
    };

    // An order valid for the old edge set stays valid when edges are
    // only removed or weights change; insertions require a check (the
    // inserted edge may point "backwards" in the retained order). When
    // the check fails, the order is not discarded but repaired by a
    // localized Pearce–Kelly shift of the affected window.
    let mut repaired_order = None;
    let topo_preserved = !task_set_changed
        && (!edges_inserted || {
            // Cheap relative to any recomputation the failed carryover
            // would force; does not bump the profiling counters, and
            // reuses the caller's order when one was supplied.
            let computed;
            let order: &[TaskId] = match old_order {
                Some(o) => o,
                None => {
                    computed = analysis::topo_order_quiet(g);
                    &computed
                }
            };
            let still_valid = analysis::is_topo_order(&edited, order);
            if !still_valid {
                // `order` is valid for the edited graph minus the
                // inserted edges (removals never break it), which is
                // exactly what the localized repair needs.
                repaired_order = Some(analysis::repair_topo_order(&edited, order, &inserted_edges));
            }
            still_valid
        });
    Ok((
        edited,
        EditEffect {
            weight_only,
            topo_preserved,
            task_set_changed,
            inserted_edges,
            removed_edges,
            touched,
            reweighted,
            repaired_order,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> TaskGraph {
        generators::diamond([1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn set_weight_is_weight_only() {
        let g = diamond();
        let (edited, eff) = apply_edits(
            &g,
            &[
                GraphEdit::SetWeight {
                    task: 1,
                    weight: 5.0,
                },
                GraphEdit::SetWeight {
                    task: 3,
                    weight: 0.5,
                },
            ],
        )
        .unwrap();
        assert!(eff.weight_only && eff.topo_preserved && !eff.task_set_changed);
        assert_eq!(edited.weights(), &[1.0, 5.0, 3.0, 0.5]);
        assert_eq!(edited.edges(), g.edges());
    }

    #[test]
    fn insert_and_remove_edges() {
        let g = diamond();
        let (edited, eff) = apply_edits(&g, &[GraphEdit::InsertEdge { from: 1, to: 2 }]).unwrap();
        assert!(!eff.weight_only && !eff.task_set_changed);
        assert!(edited.has_edge(TaskId(1), TaskId(2)));
        // 0→1→2→3 still respects the canonical diamond order 0,1,2,3.
        assert!(eff.topo_preserved);

        let (edited, eff) = apply_edits(&g, &[GraphEdit::RemoveEdge { from: 0, to: 2 }]).unwrap();
        assert!(eff.topo_preserved, "removal never breaks the order");
        assert!(!edited.has_edge(TaskId(0), TaskId(2)));
        assert_eq!(edited.m(), 3);
    }

    #[test]
    fn backwards_insertion_drops_topo() {
        // Chain 0→1→2 plus an inserted edge 2→...? that would cycle;
        // instead build two independent chains where the old order puts
        // the new edge backwards.
        let g = TaskGraph::new(vec![1.0; 4], &[(0, 1), (2, 3)]).unwrap();
        let order = analysis::topo_order(&g);
        // Find two unordered tasks where `to` precedes `from` in the
        // retained order, then insert from→to: legal, but the old order
        // no longer works.
        let pos = |t: usize| order.iter().position(|&x| x.0 == t).unwrap();
        let (from, to) = if pos(2) < pos(0) { (0, 2) } else { (2, 0) };
        let (edited, eff) = apply_edits(&g, &[GraphEdit::InsertEdge { from, to }]).unwrap();
        assert!(!eff.topo_preserved);
        assert_eq!(edited.m(), 3);
        // …but the effect carries a locally repaired order instead.
        let repaired = eff.repaired_order.expect("broken order must be repaired");
        assert!(analysis::is_topo_order(&edited, &repaired));
    }

    #[test]
    fn effect_summarizes_touched_region() {
        let g = diamond();
        let (_, eff) = apply_edits(
            &g,
            &[
                GraphEdit::RemoveEdge { from: 0, to: 2 },
                GraphEdit::InsertEdge { from: 1, to: 2 },
                GraphEdit::SetWeight {
                    task: 3,
                    weight: 9.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(eff.inserted_edges, vec![(1, 2)]);
        assert_eq!(eff.removed_edges, vec![(0, 2)]);
        assert_eq!(eff.touched, vec![0, 1, 2]);
        assert_eq!(eff.reweighted, vec![3]);
        // Insert-then-remove of the same edge nets out to nothing.
        let (_, eff) = apply_edits(
            &g,
            &[
                GraphEdit::InsertEdge { from: 1, to: 2 },
                GraphEdit::RemoveEdge { from: 1, to: 2 },
            ],
        )
        .unwrap();
        assert!(eff.inserted_edges.is_empty() && eff.removed_edges.is_empty());
        assert!(eff.touched.is_empty());
        assert!(eff.topo_preserved);
    }

    #[test]
    fn add_and_remove_task() {
        let g = diamond();
        let (edited, eff) = apply_edits(
            &g,
            &[GraphEdit::AddTask {
                weight: 2.5,
                preds: vec![3],
                succs: vec![],
            }],
        )
        .unwrap();
        assert!(eff.task_set_changed && !eff.topo_preserved);
        assert_eq!(edited.n(), 5);
        assert!(edited.has_edge(TaskId(3), TaskId(4)));

        let (edited, _) = apply_edits(&g, &[GraphEdit::RemoveTask { task: 1 }]).unwrap();
        assert_eq!(edited.n(), 3);
        // Old task 2 is now id 1, old task 3 is id 2.
        assert_eq!(edited.weights(), &[1.0, 3.0, 4.0]);
        assert!(edited.has_edge(TaskId(0), TaskId(1)));
        assert!(edited.has_edge(TaskId(1), TaskId(2)));
        assert_eq!(edited.m(), 2);
    }

    #[test]
    fn batch_applies_in_order_across_renumbering() {
        let g = diamond();
        // Remove task 0; former task 1 becomes 0 — the SetWeight that
        // follows must see the new numbering.
        let (edited, _) = apply_edits(
            &g,
            &[
                GraphEdit::RemoveTask { task: 0 },
                GraphEdit::SetWeight {
                    task: 0,
                    weight: 9.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(edited.weights(), &[9.0, 3.0, 4.0]);
    }

    #[test]
    fn errors_reject_whole_batch() {
        let g = diamond();
        for (edits, want) in [
            (
                vec![GraphEdit::SetWeight {
                    task: 9,
                    weight: 1.0,
                }],
                EditError::BadTask(9),
            ),
            (
                vec![GraphEdit::RemoveEdge { from: 1, to: 2 }],
                EditError::MissingEdge { from: 1, to: 2 },
            ),
            (
                vec![GraphEdit::SetWeight {
                    task: 0,
                    weight: -1.0,
                }],
                EditError::Graph(GraphError::BadWeight {
                    task: 0,
                    weight: -1.0,
                }),
            ),
        ] {
            assert_eq!(apply_edits(&g, &edits).unwrap_err(), want);
        }
        // Introduced cycle.
        assert!(matches!(
            apply_edits(&g, &[GraphEdit::InsertEdge { from: 3, to: 0 }]),
            Err(EditError::Graph(GraphError::Cycle(_)))
        ));
        // Cannot empty the graph.
        let single = TaskGraph::single(1.0);
        assert_eq!(
            apply_edits(&single, &[GraphEdit::RemoveTask { task: 0 }]).unwrap_err(),
            EditError::WouldBeEmpty
        );
    }

    #[test]
    fn edit_matches_rebuild_from_scratch() {
        let g = diamond();
        let edits = [
            GraphEdit::SetWeight {
                task: 2,
                weight: 7.0,
            },
            GraphEdit::InsertEdge { from: 1, to: 2 },
            GraphEdit::AddTask {
                weight: 1.5,
                preds: vec![3],
                succs: vec![],
            },
        ];
        let (edited, _) = apply_edits(&g, &edits).unwrap();
        let rebuilt = TaskGraph::new(
            vec![1.0, 2.0, 7.0, 4.0, 1.5],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2), (3, 4)],
        )
        .unwrap();
        assert_eq!(edited, rebuilt);
    }
}
